"""The cost evaluation algorithm (§4, Figure 11).

Estimating a plan is a recursive tree traversal with two phases: "a
top-down traversal from the root to the leaves and then a bottom-up
traversal from the leaves to the root.  During the first phase cost
formulas are associated with nodes.  During the second phase the cost of
each operator is computed."

This module implements that algorithm with the paper's two Step-1
optimizations — "(i) at each node the required variables are analyzed ...
only formula that compute required variables are associated with a node;
(ii) if no variables required from a child node, the recursive call to the
child is cut" — realized as demand-driven evaluation: the estimator asks
the root node for the variables the caller wants, and each formula pulls
exactly the child variables it references.  Setting
``EstimatorOptions.propagate_required = False`` restores the unoptimized
full traversal (every node computes all five variables), which the
ablation benchmark compares against.

Step 3's conflict resolution — "all formulas are invoked and the lowest
value is assigned to the variable" — is the default
:data:`ConflictPolicy.LOWEST`; :data:`ConflictPolicy.FIRST` implements the
§3.3.2 declaration-order alternative for the ablation.

Section 4.3.2's branch-and-bound extension is available through the
``bound_ms`` argument of :meth:`CostEstimator.estimate`: as soon as any
computed (sub)plan ``TotalTime`` exceeds the bound, estimation aborts with
a pruned result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping

from repro.algebra.logical import PlanNode, Submit
from repro.core.formulas import (
    BUILTIN_FUNCTIONS,
    DERIVED_VARIABLES,
    Formula,
    RESULT_VARIABLES,
    Value,
)
from repro.core.scopes import RuleMatch, RuleRepository
from repro.core.statistics import (
    ATTRIBUTE_STATISTICS,
    COLLECTION_STATISTICS,
    AttributeStats,
    CollectionStats,
    Constant,
    StatisticsCatalog,
)
from repro.errors import (
    FormulaError,
    NoApplicableRuleError,
    UnknownStatisticError,
)
from repro.obs.hotpath import NULL_HOTPATH, HotpathProfiler
from repro.obs.trace import NULL_TRACER, SpanTracer


class ConflictPolicy(Enum):
    """How to resolve several same-level formulas for one variable."""

    LOWEST = "lowest"
    FIRST = "first"


@dataclass
class EstimatorOptions:
    """Tunable behaviour of the estimator (ablation knobs of DESIGN.md)."""

    conflict_policy: ConflictPolicy = ConflictPolicy.LOWEST
    #: Step-1 optimization: propagate required variables / cut child calls.
    propagate_required: bool = True
    #: Mirror the executor's concurrent submit dispatch: mediator-side
    #: binary operators whose children all reach wrappers through Submits
    #: combine child TotalTimes as max-of-wrapper-waits plus serialized
    #: communication instead of the paper's additive sum, so the optimizer
    #: prefers plans whose submits overlap.  Off by default (the §2.3
    #: additive formulas).
    parallel_submits: bool = False
    #: Concurrency slots assumed by the parallel combinator (None = unbounded);
    #: should match ``ExecutorOptions.max_concurrency``.
    max_concurrency: int | None = None
    #: Cache computed (node, variable) values across estimate() calls.
    #: Sound because a node's estimate never depends on its parents, and
    #: the optimizer reuses subplan objects across candidate plans (the
    #: dynamic-programming table), so shared subtrees cost once.  The
    #: cache must be invalidated when rules, statistics or coefficients
    #: change — registration does this automatically.
    cache_subplans: bool = False
    #: Statistics assumed for collections absent from the catalog (§6:
    #: "In case they are not provided, standard values are given").
    default_count_object: int = 1000
    default_object_size: int = 100
    default_count_distinct: int = 100


class PlanPruned(Exception):
    """Raised internally when §4.3.2 pruning rejects the plan early."""

    def __init__(self, exceeded_ms: float) -> None:
        self.exceeded_ms = exceeded_ms
        super().__init__(f"plan pruned at {exceeded_ms:.3f} ms")


@dataclass
class NodeEstimate:
    """Computed variables of one plan node, with provenance.

    ``provenance`` maps each variable to a human-readable description of
    the rule that produced it (``"predicate[oo7]: select(AtomicParts, Id
    = V)"``), which ``explain`` output uses to show the blending at work.
    """

    node: PlanNode
    values: dict[str, Value] = field(default_factory=dict)
    provenance: dict[str, str] = field(default_factory=dict)

    def value(self, variable: str) -> Value:
        return self.values[variable]

    @property
    def total_time(self) -> float:
        return float(self.values.get("TotalTime", math.nan))

    @property
    def count_object(self) -> float:
        return float(self.values.get("CountObject", math.nan))


@dataclass
class PlanEstimate:
    """The result of costing one plan."""

    plan: PlanNode
    root: NodeEstimate
    nodes: dict[int, NodeEstimate]
    pruned: bool = False

    @property
    def total_time(self) -> float:
        """Estimated TotalTime of the whole plan, in milliseconds.

        For a pruned plan this is the partial cost at which estimation
        stopped — by construction it already exceeds the caller's bound.
        """
        return self.root.total_time

    def estimate_for(self, node: PlanNode) -> NodeEstimate:
        return self.nodes[node.node_id]

    def to_dict(self) -> dict:
        """Machine-readable plan estimate (the `explain(format="json")`
        payload): the plan tree with per-node values and provenance."""

        def node_dict(node: PlanNode) -> dict:
            estimate = self.nodes.get(node.node_id)
            payload: dict[str, Any] = {
                "operator": node.operator_name,
                "describe": node.describe(),
            }
            if estimate is not None:
                payload["values"] = {
                    variable: (
                        float(value) if isinstance(value, (int, float)) else value
                    )
                    for variable, value in estimate.values.items()
                }
                payload["provenance"] = dict(estimate.provenance)
            payload["children"] = [node_dict(child) for child in node.children]
            return payload

        return {
            "pruned": self.pruned,
            "total_time_ms": self.total_time,
            "plan": node_dict(self.plan),
        }

    def explain(self) -> str:
        """Indented plan rendering with costs and rule provenance."""
        lines: list[str] = []
        self._explain_node(self.plan, 0, lines)
        return "\n".join(lines)

    def _explain_node(self, node: PlanNode, indent: int, lines: list[str]) -> None:
        pad = "  " * indent
        estimate = self.nodes.get(node.node_id)
        if estimate is None:
            lines.append(f"{pad}{node.describe()}  [not costed]")
        else:
            parts = []
            for variable in ("CountObject", "TotalSize", "TotalTime"):
                if variable in estimate.values:
                    value = estimate.values[variable]
                    parts.append(f"{variable}={float(value):.1f}")  # type: ignore[arg-type]
            lines.append(f"{pad}{node.describe()}  [{', '.join(parts)}]")
            for variable in sorted(estimate.provenance):
                lines.append(
                    f"{pad}    {variable} <- {estimate.provenance[variable]}"
                )
        for child in node.children:
            self._explain_node(child, indent + 1, lines)


@dataclass
class SourceEnvironment:
    """Per-source evaluation extras: wrapper variables and functions (§3.3.1:
    "wrapper implementors may define their own local variables or functions
    to parameterize their formulas")."""

    name: str
    variables: dict[str, Value] = field(default_factory=dict)
    functions: dict[str, Callable[..., Value]] = field(default_factory=dict)
    context_functions: dict[str, Callable[..., Value]] = field(default_factory=dict)


@dataclass
class EstimatorCounters:
    """Work counters for the overhead benchmarks."""

    nodes_visited: int = 0
    variables_computed: int = 0
    formulas_evaluated: int = 0
    match_attempts: int = 0


class _NodeContext:
    """The :class:`EvaluationContext` a formula sees for one rule at one
    node.  Implements the Figure 7 path-resolution scheme."""

    def __init__(
        self,
        estimation: "_Estimation",
        node: PlanNode,
        source: str | None,
        match: RuleMatch,
    ) -> None:
        self.estimation = estimation
        self.node = node
        self.source = source
        self.match = match
        self.locals: dict[str, Value] = {}
        self._locals_in_progress: set[str] = set()

    # -- EvaluationContext ---------------------------------------------------

    def resolve_path(self, parts: tuple[str, ...]) -> Value:
        if len(parts) == 1:
            return self._resolve_single(parts[0])
        if len(parts) == 2:
            return self._resolve_double(parts[0], parts[1])
        return self._resolve_triple(parts[0], parts[1], parts[2])

    def resolve_function(self, name: str) -> Callable[..., Value]:
        env = self.estimation.estimator.source_environment(self.source)
        if name in env.functions:
            return env.functions[name]
        if name in env.context_functions:
            fn = env.context_functions[name]
            return lambda *args: fn(self, *args)
        if name in BUILTIN_FUNCTIONS:
            return BUILTIN_FUNCTIONS[name]
        raise FormulaError(
            f"unknown function {name!r} (source {self.source or 'mediator'})"
        )

    # -- resolution helpers -----------------------------------------------------

    def _resolve_single(self, name: str) -> Value:
        # 1. rule-local assignment (e.g. CountPage in the Figure 13 rule)
        local = self._maybe_local(name)
        if local is not None:
            return local
        # 2. pattern variable binding
        bindings = self.match.bindings
        if name in bindings:
            bound = bindings[name]
            if isinstance(bound, PlanNode):
                # A bare child reference has no scalar value; expose its
                # estimated cardinality, the most common intent.
                return self.estimation.value_of(bound, "CountObject")
            if isinstance(bound, (int, float, str, bool, Constant)):
                return bound if not isinstance(bound, Constant) else bound
            return bound  # predicates, attribute tuples: for functions
        # 3. the node's own result variable ("Variables without a
        #    collection name refer to the result of the formula")
        if name in RESULT_VARIABLES or name in DERIVED_VARIABLES:
            return self.estimation.value_of(self.node, name)
        # 4. wrapper-defined variable (PageSize = 4000)
        env = self.estimation.estimator.source_environment(self.source)
        if name in env.variables:
            return env.variables[name]
        raise FormulaError(f"unbound reference {name!r}")

    def _resolve_double(self, first: str, second: str) -> Value:
        subject = self._subject(first)
        if isinstance(subject, PlanNode):
            if second in RESULT_VARIABLES or second in DERIVED_VARIABLES:
                return self.estimation.value_of(subject, second)
            raise FormulaError(
                f"{first}.{second}: {second!r} is not a result variable"
            )
        if isinstance(subject, CollectionStats):
            if second in COLLECTION_STATISTICS:
                return subject.lookup(second)
            raise FormulaError(
                f"{first}.{second}: {second!r} is not a collection statistic"
            )
        if isinstance(subject, str) and second in ATTRIBUTE_STATISTICS:
            # ``A.Min`` where A is a bound attribute name: resolve against
            # the node's primary collection ("Attribute and Collection may
            # be omitted in non-ambiguous cases").
            stats = self._primary_stats()
            return stats.attribute(subject).lookup(second)
        raise FormulaError(f"cannot resolve {first}.{second}")

    def _resolve_triple(self, first: str, second: str, third: str) -> Value:
        subject = self._subject(first)
        if isinstance(subject, PlanNode):
            stats = self._stats_for_node(subject)
        elif isinstance(subject, CollectionStats):
            stats = subject
        else:
            raise FormulaError(f"cannot resolve {first}.{second}.{third}")
        attribute = second
        bindings = self.match.bindings
        if attribute in bindings and isinstance(bindings[attribute], str):
            attribute = bindings[attribute]
        if third not in ATTRIBUTE_STATISTICS:
            raise FormulaError(f"{third!r} is not an attribute statistic")
        return stats.attribute(attribute).lookup(third)

    def _subject(self, name: str) -> Any:
        """Resolve the first path component: binding, collection, or child."""
        bindings = self.match.bindings
        if name in bindings:
            bound = bindings[name]
            if isinstance(bound, PlanNode):
                return bound
            if isinstance(bound, str):
                # Collection name or attribute name; try collection first.
                catalog_stats = self.estimation.estimator.stats_or_none(bound)
                if catalog_stats is not None:
                    return catalog_stats
                return bound
            return bound
        catalog_stats = self.estimation.estimator.stats_or_none(name)
        if catalog_stats is not None:
            return catalog_stats
        return name

    def _primary_stats(self) -> CollectionStats:
        return self._stats_for_node(self.node)

    def _stats_for_node(self, node: PlanNode) -> CollectionStats:
        collection = node.primary_collection()
        if collection is None:
            raise FormulaError(
                f"node {node.describe()} has no unique base collection for "
                "attribute-statistic lookup"
            )
        return self.estimation.estimator.stats_for(collection)

    def _maybe_local(self, name: str) -> Value | None:
        if name in self.locals:
            return self.locals[name]
        rule = self.match.rule
        if name not in rule.locals_:
            return None
        if name in self._locals_in_progress:
            raise FormulaError(f"cyclic local variable {name!r} in rule {rule.name}")
        self._locals_in_progress.add(name)
        try:
            candidates = [
                formula.evaluate(self) for formula in rule.formulas_for(name)
            ]
        finally:
            self._locals_in_progress.discard(name)
        value = candidates[0] if len(candidates) == 1 else min(
            float(v) for v in candidates  # type: ignore[arg-type]
        )
        self.locals[name] = value
        return value

    # -- conveniences for native (generic-model) formulas -------------------------

    def child(self, index: int = 0) -> PlanNode:
        children = self.node.children
        if not children:
            raise FormulaError(f"{self.node.describe()} has no children")
        return children[index]

    def child_value(self, variable: str, index: int = 0) -> float:
        return float(self.estimation.value_of(self.child(index), variable))  # type: ignore[arg-type]

    def own_value(self, variable: str) -> float:
        return float(self.estimation.value_of(self.node, variable))  # type: ignore[arg-type]

    def stats_or_none(self, collection: str) -> CollectionStats | None:
        return self.estimation.estimator.stats_or_none(collection)

    def primary_stats_or_none(self) -> CollectionStats | None:
        collection = self.node.primary_collection()
        if collection is None:
            return None
        return self.estimation.estimator.stats_for(collection)

    def attribute_stats(
        self, collection: str | None, attribute: str
    ) -> AttributeStats | None:
        if collection is None:
            stats = self.primary_stats_or_none()
        else:
            stats = self.estimation.estimator.stats_for(collection)
        if stats is None:
            return None
        try:
            return stats.attribute(attribute)
        except UnknownStatisticError:
            return None

    @property
    def coefficients(self) -> Any:
        return self.estimation.estimator.coefficients

    @property
    def options(self) -> EstimatorOptions:
        return self.estimation.estimator.options


class _Estimation:
    """State of one estimate() run: memo tables, counters, prune bound."""

    def __init__(
        self,
        estimator: "CostEstimator",
        sources: Mapping[int, str | None],
        bound_ms: float | None,
    ) -> None:
        self.estimator = estimator
        self.sources = sources
        self.bound_ms = bound_ms
        self.estimates: dict[int, NodeEstimate] = {}
        self.in_progress: set[tuple[int, str]] = set()
        self.counters = EstimatorCounters()

    def estimate_node(self, node: PlanNode) -> NodeEstimate:
        if node.node_id not in self.estimates:
            self.counters.nodes_visited += 1
            self.estimates[node.node_id] = NodeEstimate(node=node)
        return self.estimates[node.node_id]

    def value_of(self, node: PlanNode, variable: str) -> Value:
        """Demand-driven Step-2/3 evaluation with memoization."""
        estimate = self.estimate_node(node)
        if variable in estimate.values:
            return estimate.values[variable]
        cache = self.estimator.subplan_cache
        if cache is not None:
            cached = cache.get((node.node_id, variable))
            if cached is not None:
                value, provenance = cached
                estimate.values[variable] = value
                estimate.provenance[variable] = provenance
                # Count the variable before the §4.3.2 bound check, exactly
                # like the non-cached path below: a cached TotalTime that
                # trips the bound must leave the same counter trail, or
                # OptimizerStats undercounts pruned work on warm caches.
                self.counters.variables_computed += 1
                if (
                    variable == "TotalTime"
                    and self.bound_ms is not None
                    and isinstance(value, (int, float))
                    and value > self.bound_ms
                ):
                    raise PlanPruned(float(value))
                return value
        if variable in DERIVED_VARIABLES:
            value = self._derived(node, variable)
            estimate.values[variable] = value
            estimate.provenance[variable] = "derived"
            return value
        key = (node.node_id, variable)
        if key in self.in_progress:
            raise FormulaError(
                f"cyclic dependency computing {variable} of {node.describe()}"
            )
        self.in_progress.add(key)
        try:
            value, provenance = self._compute(node, variable)
        finally:
            self.in_progress.discard(key)
        estimate.values[variable] = value
        estimate.provenance[variable] = provenance
        cache = self.estimator.subplan_cache
        if cache is not None:
            cache[(node.node_id, variable)] = (value, provenance)
        self.counters.variables_computed += 1
        if (
            variable == "TotalTime"
            and self.bound_ms is not None
            and isinstance(value, (int, float))
            and value > self.bound_ms
        ):
            raise PlanPruned(float(value))
        return value

    def _derived(self, node: PlanNode, variable: str) -> Value:
        assert variable == "ObjectSize"
        count = float(self.value_of(node, "CountObject"))  # type: ignore[arg-type]
        size = float(self.value_of(node, "TotalSize"))  # type: ignore[arg-type]
        return size / max(1.0, count)

    def _compute(self, node: PlanNode, variable: str) -> tuple[Value, str]:
        source = self.sources.get(node.node_id)
        self.counters.match_attempts += 1
        matches = self.estimator.repository.matches_providing(node, source, variable)
        if not matches:
            raise NoApplicableRuleError(
                f"no rule provides {variable} for {node.describe()} "
                f"(source {source or 'mediator'}) — is the generic model installed?"
            )
        policy = self.estimator.options.conflict_policy
        best_value: Value | None = None
        best_provenance = ""
        best_scope = ""
        for match in matches:
            ctx = _NodeContext(self, node, source, match)
            for formula in match.rule.formulas_for(variable):
                self.counters.formulas_evaluated += 1
                value = formula.evaluate(ctx)
                improves = best_value is None or (
                    policy is ConflictPolicy.LOWEST
                    and isinstance(value, (int, float))
                    and isinstance(best_value, (int, float))
                    and value < best_value
                )
                if improves:
                    best_value = value
                    best_scope = str(match.scope)
                    best_provenance = (
                        f"{match.scope}[{match.scoped.source}]: {match.rule.name}"
                    )
                if policy is ConflictPolicy.FIRST:
                    break
            if policy is ConflictPolicy.FIRST and best_value is not None:
                break
        assert best_value is not None
        # Online calibration overlay: wrapper-owned predictions are
        # multiplied by the active coefficient for (wrapper, scope,
        # variable).  Mediator-side nodes (source None) are never
        # calibrated — the drift tracker only measures wrapper work.
        calibration = self.estimator.calibration
        if (
            calibration is not None
            and source is not None
            and isinstance(best_value, (int, float))
            and calibration.active.multipliers
        ):
            multiplier = calibration.multiplier_for(source, best_scope, variable)
            if multiplier != 1.0:
                best_value = float(best_value) * multiplier
                best_provenance += (
                    f" | calibrated x{multiplier:.4g}"
                    f" (v{calibration.active_version})"
                )
        return best_value, best_provenance


class CostEstimator:
    """Costs plans against a rule repository, a statistics catalog, and
    per-source environments.

    This is the "cost computation module in the mediator" of §4: rules are
    integrated once (into ``repository``), then :meth:`estimate` is called
    for every candidate plan the optimizer generates.
    """

    def __init__(
        self,
        repository: RuleRepository,
        catalog: StatisticsCatalog,
        options: EstimatorOptions | None = None,
        coefficients: Any = None,
    ) -> None:
        self.repository = repository
        self.catalog = catalog
        self.options = options or EstimatorOptions()
        self.coefficients = coefficients
        self._environments: dict[str, SourceEnvironment] = {}
        self._default_stats_cache: dict[str, CollectionStats] = {}
        self.last_counters = EstimatorCounters()
        #: Telemetry sink; defaults to the shared no-op tracer.
        self.tracer: SpanTracer = NULL_TRACER
        #: Wall-clock phase timers; defaults to the shared no-op profiler.
        self.hotpath: HotpathProfiler = NULL_HOTPATH
        #: Online calibration overlay (duck-typed
        #: :class:`repro.mediator.calibration.CalibrationState`); the
        #: mediator wires the catalog's state in.  None = seed behaviour.
        self.calibration: Any = None
        #: (node_id, variable) -> (value, provenance); None when disabled.
        self.subplan_cache: dict[tuple[int, str], tuple[Value, str]] | None = (
            {} if self.options.cache_subplans else None
        )

    def invalidate_cache(self) -> None:
        """Drop cached subplan values.  Call after anything the estimates
        depend on changes: rule (re)registration, statistics updates,
        coefficient adjustment."""
        if self.subplan_cache is not None:
            self.subplan_cache.clear()

    # -- environments ------------------------------------------------------------

    def source_environment(self, source: str | None) -> SourceEnvironment:
        key = source or "__mediator__"
        if key not in self._environments:
            self._environments[key] = SourceEnvironment(name=key)
        return self._environments[key]

    def register_environment(self, env: SourceEnvironment) -> None:
        self._environments[env.name] = env

    # -- statistics ---------------------------------------------------------------

    def stats_or_none(self, collection: str) -> CollectionStats | None:
        if collection in self.catalog:
            return self.catalog.get(collection)
        return None

    def stats_for(self, collection: str) -> CollectionStats:
        """Statistics with the §6 "standard values" fallback."""
        if collection in self.catalog:
            return self.catalog.get(collection)
        if collection not in self._default_stats_cache:
            options = self.options
            self._default_stats_cache[collection] = CollectionStats.from_extent(
                collection,
                count_object=options.default_count_object,
                object_size=options.default_object_size,
            )
        return self._default_stats_cache[collection]

    def default_attribute_stats(self, attribute: str) -> AttributeStats:
        return AttributeStats(
            name=attribute,
            indexed=False,
            count_distinct=self.options.default_count_distinct,
        )

    # -- the algorithm ---------------------------------------------------------------

    def estimate(
        self,
        plan: PlanNode,
        *,
        default_source: str | None = None,
        bound_ms: float | None = None,
        variables: tuple[str, ...] = ("TotalTime", "CountObject", "TotalSize"),
    ) -> PlanEstimate:
        """Cost a plan.

        Args:
            plan: the root of the logical plan tree.
            default_source: which wrapper owns nodes not under a Submit;
                ``None`` means the mediator (nodes under a Submit always
                belong to that Submit's wrapper).
            bound_ms: §4.3.2 pruning bound — estimation aborts as soon as
                any computed TotalTime exceeds it.
            variables: which root variables the caller needs.

        Returns:
            A :class:`PlanEstimate`; ``pruned`` is True when the bound cut
            the estimation short.
        """
        hotpath = self.hotpath
        if hotpath.enabled:
            with hotpath.phase("estimate"):
                return self._estimate_traced(plan, default_source, bound_ms, variables)
        return self._estimate_traced(plan, default_source, bound_ms, variables)

    def _estimate_traced(
        self,
        plan: PlanNode,
        default_source: str | None,
        bound_ms: float | None,
        variables: tuple[str, ...],
    ) -> PlanEstimate:
        tracer = self.tracer
        if not tracer.enabled:
            return self._estimate(plan, default_source, bound_ms, variables)
        span = tracer.start("estimate", kind="estimate", plan=plan.describe())
        try:
            result = self._estimate(plan, default_source, bound_ms, variables)
        except Exception:
            tracer.end(span, error=True)
            raise
        counters = self.last_counters
        tracer.end(
            span,
            total_ms=result.total_time,
            pruned=result.pruned,
            nodes_visited=counters.nodes_visited,
            formulas_evaluated=counters.formulas_evaluated,
        )
        return result

    def _estimate(
        self,
        plan: PlanNode,
        default_source: str | None,
        bound_ms: float | None,
        variables: tuple[str, ...],
    ) -> PlanEstimate:
        sources = self._assign_sources(plan, default_source)
        estimation = _Estimation(self, sources, bound_ms)
        pruned = False
        try:
            if self.options.propagate_required:
                for variable in variables:
                    estimation.value_of(plan, variable)
            else:
                # Unoptimized Figure 11: every node computes every variable.
                self._estimate_eagerly(plan, estimation)
        except PlanPruned:
            pruned = True
        self.last_counters = estimation.counters
        root = estimation.estimate_node(plan)
        if pruned and "TotalTime" not in root.values:
            # Surface the partial cost that tripped the bound.
            exceeded = max(
                (
                    float(e.values["TotalTime"])  # type: ignore[arg-type]
                    for e in estimation.estimates.values()
                    if "TotalTime" in e.values
                ),
                default=math.inf,
            )
            root.values["TotalTime"] = exceeded
            root.provenance["TotalTime"] = "pruned (§4.3.2 bound exceeded)"
        return PlanEstimate(
            plan=plan, root=root, nodes=estimation.estimates, pruned=pruned
        )

    def _estimate_eagerly(self, node: PlanNode, estimation: _Estimation) -> None:
        for child in node.children:
            self._estimate_eagerly(child, estimation)
        for variable in RESULT_VARIABLES:
            estimation.value_of(node, variable)

    @staticmethod
    def _assign_sources(
        plan: PlanNode, default_source: str | None
    ) -> dict[int, str | None]:
        """Map node ids to owning sources: below a Submit, the wrapper;
        elsewhere the default."""
        sources: dict[int, str | None] = {}

        def walk(node: PlanNode, current: str | None) -> None:
            if isinstance(node, Submit):
                # The Submit node itself is costed mediator-side (it models
                # the communication step); its subtree runs at the wrapper.
                sources[node.node_id] = None
                walk(node.child, node.wrapper)
                return
            sources[node.node_id] = current
            for child in node.children:
                walk(child, current)

        walk(plan, default_source)
        return sources


def estimate_once(
    plan: PlanNode,
    repository: RuleRepository,
    catalog: StatisticsCatalog,
    **kwargs: Any,
) -> PlanEstimate:
    """One-shot convenience: build an estimator and cost a single plan."""
    estimator = CostEstimator(repository, catalog)
    return estimator.estimate(plan, **kwargs)
