"""The cost formula expression language (§3.3.1, Figure 9).

A formula body assigns one *result variable* (``TotalTime``, ``TimeFirst``,
``TimeNext``, ``CountObject``, ``TotalSize``) the value of a mathematical
expression.  Expressions may reference, by the Figure 7 path scheme:

* statistics — ``Employee.CountObject``, ``C.A.CountDistinct`` (where
  ``C``/``A`` are free variables bound during rule matching),
* results already computed for the node — bare ``CountObject``,
* results of a child node — ``C.TotalTime`` when ``C`` is bound to an
  operator argument that is itself a subplan,
* wrapper-defined variables (``PageSize``) and functions
  (``selectivity(A, V)``), plus built-in math functions.

Expressions are parsed once, at wrapper-registration time, into an AST and
*compiled* into nested Python closures — the reproduction's stand-in for
the paper's shipped bytecode (§2.4): parse cost is paid at registration,
evaluation during optimization is a plain closure call.  No ``eval`` or
``exec`` is ever used, so wrapper-supplied text cannot execute arbitrary
code in the mediator.

The grammar extends Figure 9's four binary operators with unary minus,
comparison-free parenthesised expressions and n-ary function calls, which
the paper itself uses in Figure 13 (``exp`` with one argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

from repro.core.statistics import Constant
from repro.errors import FormulaError

#: The result variables of the Figure 9 grammar.
RESULT_VARIABLES = ("TotalTime", "TimeFirst", "TimeNext", "CountObject", "TotalSize")

#: Derived result variables formulas may also read (not assign).
DERIVED_VARIABLES = ("ObjectSize",)

Value = float | str | bool

# ---------------------------------------------------------------------------
# Evaluation context protocol
# ---------------------------------------------------------------------------


class EvaluationContext(Protocol):
    """What a compiled formula needs from its surroundings.

    The cost estimator supplies a context per plan node; tests can use
    :class:`MappingContext`.
    """

    def resolve_path(self, parts: tuple[str, ...]) -> Value:
        """Resolve a dotted path (1, 2 or 3 components) to a value."""

    def resolve_function(self, name: str) -> Callable[..., Value]:
        """Resolve a function name to a callable."""


class MappingContext:
    """Dictionary-backed :class:`EvaluationContext` for tests and tools.

    Paths are keyed by their dotted spelling (``"C.CountObject"``), and
    functions come from an explicit mapping merged over the built-ins.
    """

    def __init__(
        self,
        values: Mapping[str, Value] | None = None,
        functions: Mapping[str, Callable[..., Value]] | None = None,
    ) -> None:
        self._values = dict(values or {})
        self._functions = dict(BUILTIN_FUNCTIONS)
        if functions:
            self._functions.update(functions)

    def resolve_path(self, parts: tuple[str, ...]) -> Value:
        key = ".".join(parts)
        if key in self._values:
            return self._values[key]
        raise FormulaError(f"unbound reference {key!r}")

    def resolve_function(self, name: str) -> Callable[..., Value]:
        try:
            return self._functions[name]
        except KeyError:
            raise FormulaError(f"unknown function {name!r}") from None


# ---------------------------------------------------------------------------
# Built-in functions
# ---------------------------------------------------------------------------


def _clamp01(value: float) -> float:
    return max(0.0, min(1.0, value))


#: Functions available to every formula, mirroring "the entire library of
#: code in the mediator ... is available to the wrapper implementor" (§2.4).
BUILTIN_FUNCTIONS: dict[str, Callable[..., Value]] = {
    "exp": math.exp,
    "log": math.log,
    "ln": math.log,
    "log2": math.log2,
    "sqrt": math.sqrt,
    "abs": abs,
    "ceil": lambda x: float(math.ceil(x)),
    "floor": lambda x: float(math.floor(x)),
    "min": min,
    "max": max,
    "pow": math.pow,
    "clamp01": _clamp01,
}


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class of formula expression nodes."""

    def compile(self) -> Callable[[EvaluationContext], Value]:
        """Lower this node to a closure of one argument (the context)."""
        raise NotImplementedError

    def references(self) -> set[tuple[str, ...]]:
        """All dotted paths the expression reads (for dependency analysis)."""
        return set()

    def function_names(self) -> set[str]:
        """All function names the expression calls."""
        return set()


@dataclass(frozen=True)
class Number(Expr):
    """A numeric literal."""

    value: float

    def compile(self) -> Callable[[EvaluationContext], Value]:
        value = float(self.value)
        return lambda _ctx: value

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class StringLit(Expr):
    """A string literal (usable as a function argument)."""

    value: str

    def compile(self) -> Callable[[EvaluationContext], Value]:
        value = self.value
        return lambda _ctx: value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class PathRef(Expr):
    """A dotted reference: variable, statistic path, or result variable."""

    parts: tuple[str, ...]

    def compile(self) -> Callable[[EvaluationContext], Value]:
        parts = self.parts

        def run(ctx: EvaluationContext) -> Value:
            return ctx.resolve_path(parts)

        return run

    def references(self) -> set[tuple[str, ...]]:
        return {self.parts}

    def __str__(self) -> str:
        return ".".join(self.parts)


def _as_number(value: Value) -> float:
    """Coerce an operand of arithmetic to a float."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Constant):
        return value.as_number()
    if isinstance(value, str):
        return Constant(value).as_number()
    raise FormulaError(f"cannot use {value!r} as a number")


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation: ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def compile(self) -> Callable[[EvaluationContext], Value]:
        left = self.left.compile()
        right = self.right.compile()
        op = self.op
        if op == "+":
            return lambda ctx: _as_number(left(ctx)) + _as_number(right(ctx))
        if op == "-":
            return lambda ctx: _as_number(left(ctx)) - _as_number(right(ctx))
        if op == "*":
            return lambda ctx: _as_number(left(ctx)) * _as_number(right(ctx))
        if op == "/":

            def divide(ctx: EvaluationContext) -> Value:
                denominator = _as_number(right(ctx))
                if denominator == 0:
                    raise FormulaError(
                        f"division by zero evaluating {self}"
                    )
                return _as_number(left(ctx)) / denominator

            return divide
        raise FormulaError(f"unknown operator {op!r}")

    def references(self) -> set[tuple[str, ...]]:
        return self.left.references() | self.right.references()

    def function_names(self) -> set[str]:
        return self.left.function_names() | self.right.function_names()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def compile(self) -> Callable[[EvaluationContext], Value]:
        operand = self.operand.compile()
        return lambda ctx: -_as_number(operand(ctx))

    def references(self) -> set[tuple[str, ...]]:
        return self.operand.references()

    def function_names(self) -> set[str]:
        return self.operand.function_names()

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """A function call with positional arguments."""

    name: str
    args: tuple[Expr, ...]

    def compile(self) -> Callable[[EvaluationContext], Value]:
        compiled_args = tuple(arg.compile() for arg in self.args)
        name = self.name

        def run(ctx: EvaluationContext) -> Value:
            function = ctx.resolve_function(name)
            values = [arg(ctx) for arg in compiled_args]
            try:
                return function(*values)
            except FormulaError:
                raise
            except Exception as exc:
                raise FormulaError(
                    f"function {name}({', '.join(map(repr, values))}) failed: {exc}"
                ) from exc

        return run

    def references(self) -> set[tuple[str, ...]]:
        refs: set[tuple[str, ...]] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def function_names(self) -> set[str]:
        names = {self.name}
        for arg in self.args:
            names |= arg.function_names()
        return names

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Expression parser (recursive descent over the Figure 9 math grammar)
# ---------------------------------------------------------------------------


class _ExprTokenizer:
    """Tokenizer for formula expressions."""

    PUNCT = set("+-*/(),.")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.tokens: list[tuple[str, str]] = []
        self._scan()
        self.index = 0

    def _scan(self) -> None:
        text, length = self.text, len(self.text)
        pos = 0
        while pos < length:
            char = text[pos]
            if char.isspace():
                pos += 1
                continue
            if char.isdigit() or (
                char == "." and pos + 1 < length and text[pos + 1].isdigit()
            ):
                start = pos
                seen_dot = False
                while pos < length and (text[pos].isdigit() or text[pos] == "."):
                    if text[pos] == ".":
                        # A dot not followed by a digit is a path separator.
                        if seen_dot or pos + 1 >= length or not text[pos + 1].isdigit():
                            break
                        seen_dot = True
                    pos += 1
                # exponent part
                if pos < length and text[pos] in "eE":
                    mark = pos
                    pos += 1
                    if pos < length and text[pos] in "+-":
                        pos += 1
                    if pos < length and text[pos].isdigit():
                        while pos < length and text[pos].isdigit():
                            pos += 1
                    else:
                        pos = mark
                self.tokens.append(("number", text[start:pos]))
                continue
            if char.isalpha() or char == "_":
                start = pos
                while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                    pos += 1
                self.tokens.append(("name", text[start:pos]))
                continue
            if char in ("'", '"'):
                quote = char
                pos += 1
                start = pos
                while pos < length and text[pos] != quote:
                    pos += 1
                if pos >= length:
                    raise FormulaError(f"unterminated string literal in {text!r}")
                self.tokens.append(("string", text[start:pos]))
                pos += 1
                continue
            if char in self.PUNCT:
                self.tokens.append((char, char))
                pos += 1
                continue
            raise FormulaError(f"unexpected character {char!r} in formula {text!r}")
        self.tokens.append(("eof", ""))

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.index]

    def next(self) -> tuple[str, str]:
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str]:
        token = self.next()
        if token[0] != kind:
            raise FormulaError(
                f"expected {kind!r} but found {token[1]!r} in formula {self.text!r}"
            )
        return token


class _ExprParser:
    """``expr := term (('+'|'-') term)*``, ``term := unary (('*'|'/') unary)*``."""

    def __init__(self, text: str) -> None:
        self.tokens = _ExprTokenizer(text)
        self.text = text

    def parse(self) -> Expr:
        expr = self._expr()
        token = self.tokens.peek()
        if token[0] != "eof":
            raise FormulaError(
                f"trailing input {token[1]!r} in formula {self.text!r}"
            )
        return expr

    def _expr(self) -> Expr:
        node = self._term()
        while self.tokens.peek()[0] in ("+", "-"):
            op = self.tokens.next()[0]
            node = BinOp(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._unary()
        while self.tokens.peek()[0] in ("*", "/"):
            op = self.tokens.next()[0]
            node = BinOp(op, node, self._unary())
        return node

    def _unary(self) -> Expr:
        if self.tokens.peek()[0] == "-":
            self.tokens.next()
            return Neg(self._unary())
        if self.tokens.peek()[0] == "+":
            self.tokens.next()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        kind, value = self.tokens.next()
        if kind == "number":
            return Number(float(value))
        if kind == "string":
            return StringLit(value)
        if kind == "(":
            inner = self._expr()
            self.tokens.expect(")")
            return inner
        if kind == "name":
            if self.tokens.peek()[0] == "(":
                self.tokens.next()
                args: list[Expr] = []
                if self.tokens.peek()[0] != ")":
                    args.append(self._expr())
                    while self.tokens.peek()[0] == ",":
                        self.tokens.next()
                        args.append(self._expr())
                self.tokens.expect(")")
                return Call(value, tuple(args))
            parts = [value]
            while self.tokens.peek()[0] == ".":
                self.tokens.next()
                parts.append(self.tokens.expect("name")[1])
            if len(parts) > 3:
                raise FormulaError(
                    f"path {'.'.join(parts)!r} has more than three components"
                )
            return PathRef(tuple(parts))
        raise FormulaError(f"unexpected token {value!r} in formula {self.text!r}")


def parse_expression(text: str) -> Expr:
    """Parse a formula expression into an AST."""
    return _ExprParser(text).parse()


# ---------------------------------------------------------------------------
# Formula: one assignment "Result = expr"
# ---------------------------------------------------------------------------


@dataclass
class Formula:
    """One assignment of a result variable (Figure 9: ``<formula>``).

    ``target`` is the assigned variable.  Besides the five grammar results
    a formula may assign a *local* variable (e.g. ``CountPage`` in the
    Figure 13 rule) which later formulas of the same rule may read.
    """

    target: str
    expression: Expr
    source: str = ""

    def __post_init__(self) -> None:
        self._compiled = self.expression.compile()
        if not self.source:
            self.source = f"{self.target} = {self.expression}"

    @property
    def is_result(self) -> bool:
        """True when the target is one of the five grammar result variables."""
        return self.target in RESULT_VARIABLES

    def evaluate(self, ctx: EvaluationContext) -> Value:
        """Run the compiled closure against a context."""
        try:
            return self._compiled(ctx)
        except FormulaError as exc:
            raise FormulaError(f"{exc} [in {self.source}]") from exc

    def references(self) -> set[tuple[str, ...]]:
        return self.expression.references()

    def function_names(self) -> set[str]:
        return self.expression.function_names()

    def __str__(self) -> str:
        return self.source


class PythonFormula(Formula):
    """A formula whose body is a Python callable instead of parsed text.

    The mediator's *generic* cost model (§2.3) needs logic the wrapper
    grammar deliberately leaves out — predicate-driven selectivity
    derivation, "best of nested-loop and sort-merge" method choice — so
    its default-scope rules carry native bodies.  Wrapper-exported rules
    always come from parsed text; native bodies exist only mediator-side,
    mirroring the paper where the generic model is mediator code while
    wrapper formulas arrive through the cost language.

    ``child_requirements`` declares which result variables of child nodes
    the body reads, so the Step-1 required-variable propagation (§4.2)
    works for native formulas exactly as reference analysis does for
    parsed ones.
    """

    def __init__(
        self,
        target: str,
        body: Callable[[EvaluationContext], Value],
        source: str = "",
        child_requirements: frozenset[str] = frozenset(),
        own_requirements: frozenset[str] = frozenset(),
    ) -> None:
        self.target = target
        self.expression = Number(0.0)  # placeholder, never evaluated
        self._body = body
        self.source = source or f"{target} = <native:{body.__name__}>"
        self.child_requirements = frozenset(child_requirements)
        self.own_requirements = frozenset(own_requirements)
        self._compiled = body

    def evaluate(self, ctx: EvaluationContext) -> Value:
        try:
            return self._body(ctx)
        except FormulaError as exc:
            raise FormulaError(f"{exc} [in {self.source}]") from exc

    def references(self) -> set[tuple[str, ...]]:
        """Native formulas express requirements via the two explicit sets;
        they are surfaced here in path form for uniform analysis: child
        requirements as ``("__child__", var)`` and own-node requirements
        as ``(var,)``."""
        refs: set[tuple[str, ...]] = {
            ("__child__", variable) for variable in self.child_requirements
        }
        refs |= {(variable,) for variable in self.own_requirements}
        return refs

    def function_names(self) -> set[str]:
        return set()


def parse_formula(text: str) -> Formula:
    """Parse ``Target = expression`` into a :class:`Formula`."""
    if "=" not in text:
        raise FormulaError(f"formula {text!r} has no '=' assignment")
    target, _, body = text.partition("=")
    target = target.strip()
    if not target.replace("_", "").isalnum() or target[0].isdigit():
        raise FormulaError(f"invalid formula target {target!r}")
    return Formula(target=target, expression=parse_expression(body), source=text.strip())


def parse_formulas(texts: Sequence[str]) -> list[Formula]:
    """Parse several ``Target = expression`` lines."""
    return [parse_formula(text) for text in texts]
