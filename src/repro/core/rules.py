"""Cost rules: operator patterns, unification, and specificity (§3.3.2).

A cost rule binds an *operator pattern* (the rule head) to a list of
formulas (the rule body).  During cost estimation each plan node is
matched against rule heads; "the binding mechanism unifies each variable
in the pattern with a corresponding value from the operator being
estimated".  A head argument may be:

* a **bound name** — ``select(Employee, ...)`` matches only nodes whose
  input derives from the ``Employee`` collection;
* a **free variable** — ``select(C, P)`` matches any select, binding ``C``
  to the input and ``P`` to the predicate.

The paper orders matches by specificity: "(i) unification on the
collection name; (ii) unification on the attribute name; (iii) unification
on the predicate operation and the predicate arguments ... we select the
most specific rule, with more bound parameters.  In case of multiple rules
matching at the same level, we select the first one in the order given by
the wrapper implementor."  :meth:`OperatorPattern.specificity` encodes the
levels lexicographically and :mod:`repro.core.scopes` applies the
declaration-order tie-break.

Beyond Figure 9's ``=``-only predicates, patterns here accept all six
comparison operators, which the paper's Figure 13 rule needs conceptually
(range selections on ``Id``) — a documented, conservative grammar
extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence, Union as TUnion

from repro.algebra.expressions import AttributeRef, Comparison, Literal, Predicate
from repro.algebra.logical import (
    BindJoin,
    Join,
    PlanNode,
    Scan,
    Scatter,
    Select,
    Submit,
)
from repro.core.formulas import Formula, RESULT_VARIABLES, parse_formula
from repro.errors import CostModelError

#: Operators a rule head may name (the mediator algebra of §2.2).
PATTERN_OPERATORS = (
    "scan",
    "select",
    "project",
    "sort",
    "distinct",
    "aggregate",
    "join",
    "bindjoin",
    "union",
    "submit",
    "scatter",
)

_UNARY_WITH_PRED = ("select",)
_BINARY = ("join", "union")


@dataclass(frozen=True)
class Var:
    """A free variable in a rule head (by convention capitalised)."""

    name: str

    def __str__(self) -> str:
        return self.name


#: A collection argument: a bound collection name or a free variable.
CollectionArg = TUnion[str, Var]

Bindings = dict[str, Any]


@dataclass(frozen=True)
class SelectPredPattern:
    """Pattern over the Figure 9 ``<sel pred>`` shape ``A op V``.

    ``attribute`` and ``value`` may be bound or free; ``op`` is always
    bound (a rule about ``=`` should not silently cover ``<``).
    """

    attribute: str | Var
    op: str
    value: Any | Var

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value}"


@dataclass(frozen=True)
class JoinPredPattern:
    """Pattern over the Figure 9 ``<join pred>`` shape ``A1 = A2``."""

    left_attribute: str | Var
    right_attribute: str | Var

    def __str__(self) -> str:
        return f"{self.left_attribute} = {self.right_attribute}"


@dataclass(frozen=True)
class AnyPredicate:
    """A whole-predicate free variable: ``select(C, P)``."""

    var: Var

    def __str__(self) -> str:
        return str(self.var)


PredicateArg = TUnion[SelectPredPattern, JoinPredPattern, AnyPredicate, None]


def _collection_matches(arg: CollectionArg, node_input: Any) -> tuple[bool, Bindings]:
    """Unify one collection argument of a pattern with a node input.

    ``node_input`` is a collection name for scans, else a child plan node
    whose :meth:`primary_collection` provides the name to match.
    """
    if isinstance(arg, Var):
        return True, {arg.name: node_input}
    if isinstance(node_input, str):
        return (node_input == arg), {}
    if isinstance(node_input, PlanNode):
        return (node_input.primary_collection() == arg), {}
    return False, {}


@dataclass(frozen=True)
class OperatorPattern:
    """A rule head: operator name plus collection/predicate arguments."""

    operator: str
    collections: tuple[CollectionArg, ...] = ()
    predicate: PredicateArg = None

    def __post_init__(self) -> None:
        if self.operator not in PATTERN_OPERATORS:
            raise CostModelError(f"unknown operator {self.operator!r} in rule head")
        expected = 2 if self.operator in _BINARY else 1
        if len(self.collections) != expected:
            raise CostModelError(
                f"{self.operator} pattern needs {expected} collection argument(s), "
                f"got {len(self.collections)}"
            )
        if isinstance(self.predicate, JoinPredPattern) and self.operator != "join":
            raise CostModelError("join-predicate pattern on a non-join operator")
        if isinstance(self.predicate, SelectPredPattern) and self.operator != "select":
            raise CostModelError("select-predicate pattern on a non-select operator")

    # -- specificity --------------------------------------------------------------

    def specificity(self) -> tuple[int, int, int, int]:
        """(bound collections, bound predicate shape, bound attributes,
        bound values), compared lexicographically.

        The second component distinguishes ``select(C, A = V)`` — which
        pins the predicate *operation* (the paper's level iii covers "the
        predicate operation and the predicate arguments") — from
        ``select(C, P)``, whose whole-predicate variable matches anything.
        """
        collections_bound = sum(
            1 for arg in self.collections if not isinstance(arg, Var)
        )
        shape_bound = 0
        attributes_bound = 0
        values_bound = 0
        pred = self.predicate
        if isinstance(pred, SelectPredPattern):
            shape_bound = 1
            if not isinstance(pred.attribute, Var):
                attributes_bound += 1
            if not isinstance(pred.value, Var):
                values_bound += 1
        elif isinstance(pred, JoinPredPattern):
            shape_bound = 1
            for attribute in (pred.left_attribute, pred.right_attribute):
                if not isinstance(attribute, Var):
                    attributes_bound += 1
        return (collections_bound, shape_bound, attributes_bound, values_bound)

    # -- unification ---------------------------------------------------------------

    def match(self, node: PlanNode) -> Bindings | None:
        """Unify this pattern with a plan node.

        Returns the variable bindings on success, ``None`` on failure.
        Bindings map variable names to: a collection name (scan inputs),
        a child :class:`PlanNode` (other inputs), an attribute name, a
        literal value, or a whole :class:`Predicate`.
        """
        if node.operator_name != self.operator:
            return None
        bindings: Bindings = {}

        inputs = self._node_inputs(node)
        if inputs is None or len(inputs) != len(self.collections):
            return None
        for arg, node_input in zip(self.collections, inputs):
            ok, new = _collection_matches(arg, node_input)
            if not ok:
                return None
            bindings.update(new)

        if not self._match_predicate(node, bindings):
            return None
        return bindings

    @staticmethod
    def _node_inputs(node: PlanNode) -> list[Any] | None:
        """The values the pattern's collection arguments unify against."""
        if isinstance(node, Scan):
            return [node.collection]
        if isinstance(node, Submit):
            return [node.child]
        if isinstance(node, BindJoin):
            return [node.outer]
        if isinstance(node, Scatter):
            # One collection argument — the *logical* name; a rule head
            # may pin it even though the node fans out to N branches.
            return [node.collection]
        children = list(node.children)
        if not children:
            return None
        return children

    def _match_predicate(self, node: PlanNode, bindings: Bindings) -> bool:
        pred_pattern = self.predicate
        if pred_pattern is None:
            return True
        if isinstance(pred_pattern, AnyPredicate):
            node_predicate = getattr(node, "predicate", None)
            if node_predicate is None:
                return False
            bindings[pred_pattern.var.name] = node_predicate
            return True
        if isinstance(pred_pattern, SelectPredPattern):
            return self._match_select_pred(node, pred_pattern, bindings)
        if isinstance(pred_pattern, JoinPredPattern):
            return self._match_join_pred(node, pred_pattern, bindings)
        return False

    @staticmethod
    def _match_select_pred(
        node: PlanNode, pattern: SelectPredPattern, bindings: Bindings
    ) -> bool:
        if not isinstance(node, Select):
            return False
        predicate = node.predicate
        if not isinstance(predicate, Comparison):
            return False
        predicate = predicate.normalized()
        if not predicate.is_attr_value:
            return False
        attribute = predicate.left
        value = predicate.right
        assert isinstance(attribute, AttributeRef)
        assert isinstance(value, Literal)
        if predicate.op != pattern.op:
            return False
        if isinstance(pattern.attribute, Var):
            bindings[pattern.attribute.name] = attribute.name
        elif pattern.attribute != attribute.name:
            return False
        if isinstance(pattern.value, Var):
            bindings[pattern.value.name] = value.value
        elif pattern.value != value.value:
            return False
        return True

    @staticmethod
    def _match_join_pred(
        node: PlanNode, pattern: JoinPredPattern, bindings: Bindings
    ) -> bool:
        if not isinstance(node, Join):
            return False
        left = node.left_attribute
        right = node.right_attribute
        if isinstance(pattern.left_attribute, Var):
            bindings[pattern.left_attribute.name] = left.name
        elif pattern.left_attribute != left.name:
            return False
        if isinstance(pattern.right_attribute, Var):
            bindings[pattern.right_attribute.name] = right.name
        elif pattern.right_attribute != right.name:
            return False
        return True

    def __str__(self) -> str:
        args = [str(arg) for arg in self.collections]
        if self.predicate is not None:
            args.append(str(self.predicate))
        return f"{self.operator}({', '.join(args)})"


@dataclass
class CostRule:
    """A rule head plus its formula body (§3.3.2).

    "The rule body is the formula itself; the body may contain more than
    one formula depending on how many costs are provided."  Formulas are
    ordered: a local assignment (e.g. ``CountPage = ...`` in Figure 13) is
    visible to the formulas after it.

    Attributes:
        head: the operator pattern.
        formulas: ordered formula list (result and local assignments).
        name: optional label for provenance (shown by explain()).
        order: declaration order within its scope — the paper's tie-break.
    """

    head: OperatorPattern
    formulas: list[Formula]
    name: str = ""
    order: int = 0

    def __post_init__(self) -> None:
        if not self.formulas:
            raise CostModelError(f"rule {self.head} has an empty body")
        if not self.name:
            self.name = str(self.head)

    @property
    def provides(self) -> set[str]:
        """The grammar result variables this rule can compute."""
        return {f.target for f in self.formulas if f.target in RESULT_VARIABLES}

    @property
    def locals_(self) -> set[str]:
        """Local (non-result) variables assigned by the body."""
        return {f.target for f in self.formulas if f.target not in RESULT_VARIABLES}

    def formulas_for(self, variable: str) -> list[Formula]:
        """All body formulas assigning ``variable``, in order."""
        return [f for f in self.formulas if f.target == variable]

    def specificity(self) -> tuple[int, int, int, int]:
        return self.head.specificity()

    def match(self, node: PlanNode) -> Bindings | None:
        return self.head.match(node)

    def __str__(self) -> str:
        body = "; ".join(str(f) for f in self.formulas)
        return f"{self.head} {{ {body} }}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def _as_collection_arg(value: str) -> CollectionArg:
    """Interpret a spelling: leading-uppercase single letters and ``R1``-style
    names are **not** auto-variables — variables must be explicit via
    :func:`var` or the CDL parser's declaration rules."""
    return value


def var(name: str) -> Var:
    """Create a free variable for use in rule heads."""
    return Var(name)


def rule(
    head: OperatorPattern,
    body: Sequence[str] | Sequence[Formula] | Mapping[str, str],
    name: str = "",
) -> CostRule:
    """Build a :class:`CostRule` from formula texts, objects, or a mapping.

    Example::

        rule(scan_pattern("Employee"),
             ["TotalTime = 120 + Employee.TotalSize * 12"])
    """
    formulas: list[Formula] = []
    if isinstance(body, Mapping):
        formulas = [parse_formula(f"{target} = {text}") for target, text in body.items()]
    else:
        for item in body:
            formulas.append(item if isinstance(item, Formula) else parse_formula(item))
    return CostRule(head=head, formulas=formulas, name=name)


def scan_pattern(collection: CollectionArg) -> OperatorPattern:
    """``scan(C)`` head."""
    return OperatorPattern("scan", (collection,))


def select_pattern(
    collection: CollectionArg,
    predicate: PredicateArg = None,
) -> OperatorPattern:
    """``select(C, P)`` head; ``predicate=None`` matches any select."""
    if predicate is None:
        predicate = AnyPredicate(Var("P"))
    return OperatorPattern("select", (collection,), predicate)


def select_eq_pattern(
    collection: CollectionArg,
    attribute: str | Var,
    value: Any | Var,
    op: str = "=",
) -> OperatorPattern:
    """``select(C, A op V)`` head."""
    return OperatorPattern(
        "select", (collection,), SelectPredPattern(attribute, op, value)
    )


def project_pattern(collection: CollectionArg) -> OperatorPattern:
    """``project(C, ...)`` head (attribute list always free)."""
    return OperatorPattern("project", (collection,))


def join_pattern(
    left: CollectionArg,
    right: CollectionArg,
    left_attribute: str | Var | None = None,
    right_attribute: str | Var | None = None,
) -> OperatorPattern:
    """``join(C1, C2, A1 = A2)`` head; omit attributes to match any
    join predicate."""
    predicate: PredicateArg = None
    if left_attribute is not None or right_attribute is not None:
        predicate = JoinPredPattern(
            left_attribute if left_attribute is not None else Var("A1"),
            right_attribute if right_attribute is not None else Var("A2"),
        )
    return OperatorPattern("join", (left, right), predicate)


def unary_pattern(operator: str, collection: CollectionArg) -> OperatorPattern:
    """Head for the remaining unary operators (sort/distinct/aggregate/
    submit/scatter)."""
    return OperatorPattern(operator, (collection,))


def union_pattern(left: CollectionArg, right: CollectionArg) -> OperatorPattern:
    """``union(C1, C2)`` head."""
    return OperatorPattern("union", (left, right))


def most_specific_first(rules: Iterable[CostRule]) -> list[CostRule]:
    """Sort rules by descending specificity, stable on declaration order."""
    return sorted(
        rules,
        key=lambda r: tuple(-level for level in r.specificity()) + (r.order,),
    )
