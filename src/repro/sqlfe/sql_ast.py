"""AST for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``collection.name``."""

    name: str
    collection: str | None = None

    def __str__(self) -> str:
        return f"{self.collection}.{self.name}" if self.collection else self.name


@dataclass(frozen=True)
class Literal:
    value: Any

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class ComparisonCond:
    op: str
    left: Operand
    right: Operand


@dataclass(frozen=True)
class BetweenCond:
    column: ColumnRef
    low: Literal
    high: Literal


@dataclass(frozen=True)
class AndCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class OrCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class NotCond:
    operand: "Condition"


Condition = Union[ComparisonCond, BetweenCond, AndCond, OrCond, NotCond]


@dataclass(frozen=True)
class SelectItem:
    """One output item: a column or an aggregate call, with optional alias."""

    column: ColumnRef | None = None
    aggregate: str | None = None  # count/sum/avg/min/max
    aggregate_arg: ColumnRef | None = None  # None = '*' (count only)
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.aggregate:
            inner = str(self.aggregate_arg) if self.aggregate_arg else "*"
            return f"{self.aggregate}({inner})"
        assert self.column is not None
        return self.column.name


@dataclass
class UnionQuery:
    """``query UNION [ALL] query [...]``.

    ``distinct`` is True when any bare ``UNION`` appears (the whole result
    is de-duplicated — a simplification of SQL's pairwise semantics,
    documented in the parser).
    """

    branches: list["SelectQuery"]
    distinct: bool = True


@dataclass
class SelectQuery:
    """A parsed SELECT statement."""

    items: list[SelectItem]  # empty = SELECT *
    collections: list[str]
    where: Condition | None = None
    joins_on: list[ComparisonCond] = field(default_factory=list)  # JOIN ... ON
    distinct: bool = False
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[ColumnRef] = field(default_factory=list)
    order_descending: bool = False

    @property
    def select_star(self) -> bool:
        return not self.items
