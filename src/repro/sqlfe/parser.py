"""Recursive-descent parser for the SQL subset.

Supported shape::

    SELECT [DISTINCT] * | item[, item...]
    FROM coll [, coll...] | coll JOIN coll ON cond [JOIN coll ON cond...]
    [WHERE condition]
    [GROUP BY col[, col...]]
    [ORDER BY col[, col...] [ASC|DESC]]

Items are columns (optionally ``collection.column``) or aggregate calls
(``COUNT(*)``, ``SUM(x)``, ...) with optional ``AS alias``.  Conditions
use the six comparison operators, ``BETWEEN``, ``AND``/``OR``/``NOT`` and
parentheses.  Set operations and subqueries are outside this subset (the
algebra supports union; build such plans directly).
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sqlfe.lexer import Token, tokenize_sql
from repro.sqlfe.sql_ast import (
    AndCond,
    BetweenCond,
    ColumnRef,
    ComparisonCond,
    Condition,
    Literal,
    NotCond,
    Operand,
    OrCond,
    SelectItem,
    SelectQuery,
    UnionQuery,
)

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class SqlParser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize_sql(source)
        self.index = 0

    # -- plumbing ---------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SqlSyntaxError:
        token = token or self._peek()
        return SqlSyntaxError(message, token.line, token.column)

    def _expect(self, kind: str, what: str = "") -> Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(f"expected {what or kind!r}, found {token.text!r}", token)
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.text != word:
            raise self._error(f"expected {word}, found {token.text!r}", token)

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text in words

    def _take_keyword(self, *words: str) -> str | None:
        if self._at_keyword(*words):
            return self._next().text
        return None

    def _ident(self, what: str = "identifier") -> str:
        token = self._next()
        if token.kind != "ident":
            raise self._error(f"expected {what}, found {token.text!r}", token)
        return token.text

    # -- grammar ------------------------------------------------------------------

    def parse_statement(self) -> SelectQuery | UnionQuery:
        """One statement: a SELECT, possibly a UNION [ALL] chain.

        Simplification vs full SQL: when any bare ``UNION`` appears, the
        *entire* chain is de-duplicated (SQL's semantics are pairwise).
        """
        first = self.parse()
        if not self._at_keyword("UNION"):
            trailing = self._peek()
            if trailing.kind != "eof":
                raise self._error(
                    f"unexpected {trailing.text!r} after query", trailing
                )
            return first
        branches = [first]
        distinct = False
        while self._take_keyword("UNION"):
            if self._take_keyword("ALL") is None:
                distinct = True
            branches.append(self.parse())
        trailing = self._peek()
        if trailing.kind != "eof":
            raise self._error(f"unexpected {trailing.text!r} after query", trailing)
        return UnionQuery(branches=branches, distinct=distinct)

    def parse(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._take_keyword("DISTINCT") is not None
        items = self._select_list()
        self._expect_keyword("FROM")
        collections, joins_on = self._from_clause()
        where: Condition | None = None
        if self._take_keyword("WHERE"):
            where = self._condition()
        group_by: list[ColumnRef] = []
        if self._take_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._column_list()
        order_by: list[ColumnRef] = []
        descending = False
        if self._take_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._column_list()
            direction = self._take_keyword("ASC", "DESC")
            descending = direction == "DESC"
        return SelectQuery(
            items=items,
            collections=collections,
            where=where,
            joins_on=joins_on,
            distinct=distinct,
            group_by=group_by,
            order_by=order_by,
            order_descending=descending,
        )

    def _select_list(self) -> list[SelectItem]:
        if self._peek().kind == "*":
            self._next()
            return []
        items = [self._select_item()]
        while self._peek().kind == ",":
            self._next()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token.kind == "keyword" and token.text in _AGGREGATES:
            function = self._next().text.lower()
            self._expect("(")
            argument: ColumnRef | None = None
            if self._peek().kind == "*":
                self._next()
                if function != "count":
                    raise self._error(f"{function}(*) is not defined")
            else:
                argument = self._column_ref()
            self._expect(")")
            alias = self._alias()
            return SelectItem(aggregate=function, aggregate_arg=argument, alias=alias)
        column = self._column_ref()
        return SelectItem(column=column, alias=self._alias())

    def _alias(self) -> str | None:
        if self._take_keyword("AS"):
            return self._ident("alias")
        return None

    def _from_clause(self) -> tuple[list[str], list[ComparisonCond]]:
        collections = [self._ident("collection name")]
        joins_on: list[ComparisonCond] = []
        while True:
            if self._peek().kind == ",":
                self._next()
                collections.append(self._ident("collection name"))
            elif self._at_keyword("JOIN"):
                self._next()
                collections.append(self._ident("collection name"))
                self._expect_keyword("ON")
                condition = self._comparison()
                if not isinstance(condition, ComparisonCond):
                    raise self._error("JOIN ... ON needs a comparison")
                joins_on.append(condition)
            else:
                return collections, joins_on

    def _column_list(self) -> list[ColumnRef]:
        columns = [self._column_ref()]
        while self._peek().kind == ",":
            self._next()
            columns.append(self._column_ref())
        return columns

    def _column_ref(self) -> ColumnRef:
        first = self._ident("column name")
        if self._peek().kind == ".":
            self._next()
            second = self._ident("column name")
            return ColumnRef(name=second, collection=first)
        return ColumnRef(name=first)

    # -- conditions --------------------------------------------------------------------

    def _condition(self) -> Condition:
        left = self._and_condition()
        while self._take_keyword("OR"):
            left = OrCond(left, self._and_condition())
        return left

    def _and_condition(self) -> Condition:
        left = self._primary_condition()
        while self._take_keyword("AND"):
            left = AndCond(left, self._primary_condition())
        return left

    def _primary_condition(self) -> Condition:
        if self._take_keyword("NOT"):
            return NotCond(self._primary_condition())
        if self._peek().kind == "(":
            self._next()
            inner = self._condition()
            self._expect(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Condition:
        left = self._operand()
        if self._at_keyword("BETWEEN"):
            if not isinstance(left, ColumnRef):
                raise self._error("BETWEEN needs a column on the left")
            self._next()
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return BetweenCond(column=left, low=low, high=high)
        op_token = self._next()
        if op_token.kind not in _COMPARISONS:
            raise self._error(
                f"expected a comparison operator, found {op_token.text!r}", op_token
            )
        right = self._operand()
        return ComparisonCond(op=op_token.kind, left=left, right=right)

    def _operand(self) -> Operand:
        token = self._peek()
        if token.kind in ("number", "string"):
            return self._literal()
        return self._column_ref()

    def _literal(self) -> Literal:
        token = self._next()
        if token.kind == "number":
            value = float(token.text)
            return Literal(int(value) if value.is_integer() else value)
        if token.kind == "string":
            return Literal(token.text)
        raise self._error(f"expected a literal, found {token.text!r}", token)


def parse_sql(source: str) -> SelectQuery | UnionQuery:
    """Parse one statement: a SELECT or a UNION chain."""
    return SqlParser(source).parse_statement()
