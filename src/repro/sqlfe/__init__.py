"""The object/relational SQL front end (§2.2 Step 3)."""

from repro.sqlfe.parser import parse_sql
from repro.sqlfe.translator import translate, translate_sql

__all__ = ["parse_sql", "translate", "translate_sql"]
