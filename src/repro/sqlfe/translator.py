"""Translation from SQL ASTs to optimizer query specs (§2.2).

"The mediator ... parses the client query, it transforms the query,
written with respect to a global view, into a query over local schemas."
Here that means: resolve every attribute against the catalog's global
collection namespace, lower conditions to algebra predicates, split the
WHERE conjunction into per-collection filters and cross-collection joins,
and validate the aggregate/grouping shape.
"""

from __future__ import annotations

from repro.algebra import expressions as expr
from repro.algebra.logical import AggregateSpec
from repro.errors import QueryError, UnknownCollectionError
from repro.mediator.catalog import MediatorCatalog
from repro.mediator.queryspec import QuerySpec, UnionSpec
from repro.sqlfe import sql_ast as ast
from repro.sqlfe.parser import parse_sql


def translate_sql(
    source: str, catalog: MediatorCatalog
) -> QuerySpec | UnionSpec:
    """Parse and translate one statement (SELECT or UNION chain)."""
    return translate(parse_sql(source), catalog)


def translate(
    query: "ast.SelectQuery | ast.UnionQuery", catalog: MediatorCatalog
) -> QuerySpec | UnionSpec:
    if isinstance(query, ast.UnionQuery):
        return UnionSpec(
            branches=[_Translator(branch, catalog).run() for branch in query.branches],
            distinct=query.distinct,
        )
    return _Translator(query, catalog).run()


class _Translator:
    def __init__(self, query: ast.SelectQuery, catalog: MediatorCatalog) -> None:
        self.query = query
        self.catalog = catalog
        self.collections = query.collections

    def run(self) -> QuerySpec:
        for collection in self.collections:
            if collection not in self.catalog:
                raise UnknownCollectionError(
                    f"unknown collection {collection!r} "
                    f"(known: {self.catalog.collection_names()})"
                )

        filters: dict[str, list[expr.Predicate]] = {}
        joins: list[expr.Comparison] = []

        def classify(predicate: expr.Predicate) -> None:
            referenced = self._collections_of(predicate)
            if len(referenced) <= 1:
                collection = (
                    next(iter(referenced)) if referenced else self.collections[0]
                )
                filters.setdefault(collection, []).append(predicate)
            elif (
                isinstance(predicate, expr.Comparison)
                and predicate.is_attr_attr
                and len(referenced) == 2
            ):
                if predicate.op != "=":
                    raise QueryError(
                        f"only equi-joins are supported, got {predicate}"
                    )
                joins.append(predicate)
            else:
                raise QueryError(
                    f"predicate {predicate} spans collections {sorted(referenced)} "
                    "and is not an equi-join"
                )

        for join_cond in self.query.joins_on:
            predicate = self._condition(join_cond)
            classify(predicate)
        if self.query.where is not None:
            for conjunct in self._condition(self.query.where).conjuncts():
                classify(conjunct)

        projection, renames, aggregates = self._select_items()
        group_by = [self._resolve(c).name for c in self.query.group_by]
        self._check_grouping(projection, aggregates, group_by)

        return QuerySpec(
            collections=list(self.collections),
            filters=filters,
            joins=joins,
            projection=projection,
            projection_renames=renames,
            distinct=self.query.distinct,
            group_by=group_by,
            aggregates=aggregates,
            order_by=[self._resolve(c).name for c in self.query.order_by],
            order_descending=self.query.order_descending,
        )

    # -- resolution ---------------------------------------------------------------

    def _resolve(self, column: ast.ColumnRef) -> expr.AttributeRef:
        if column.collection is not None:
            if column.collection not in self.collections:
                raise QueryError(
                    f"{column}: collection {column.collection!r} is not in FROM"
                )
            return expr.AttributeRef(column.name, column.collection)
        collection = self.catalog.resolve_attribute(column.name, self.collections)
        return expr.AttributeRef(column.name, collection)

    def _operand(self, operand: ast.Operand) -> expr.Expression:
        if isinstance(operand, ast.Literal):
            return expr.Literal(operand.value)
        return self._resolve(operand)

    def _condition(self, condition: ast.Condition) -> expr.Predicate:
        if isinstance(condition, ast.ComparisonCond):
            return expr.Comparison(
                condition.op,
                self._operand(condition.left),
                self._operand(condition.right),
            )
        if isinstance(condition, ast.BetweenCond):
            column = self._resolve(condition.column)
            return expr.And(
                expr.Comparison(">=", column, expr.Literal(condition.low.value)),
                expr.Comparison("<=", column, expr.Literal(condition.high.value)),
            )
        if isinstance(condition, ast.AndCond):
            return expr.And(
                self._condition(condition.left), self._condition(condition.right)
            )
        if isinstance(condition, ast.OrCond):
            return expr.Or(
                self._condition(condition.left), self._condition(condition.right)
            )
        if isinstance(condition, ast.NotCond):
            return expr.Not(self._condition(condition.operand))
        raise QueryError(f"unsupported condition {condition!r}")

    def _collections_of(self, predicate: expr.Predicate) -> set[str]:
        found: set[str] = set()

        def walk(node: expr.Expression) -> None:
            if isinstance(node, expr.AttributeRef):
                assert node.collection is not None
                found.add(node.collection)
            elif isinstance(node, expr.Comparison):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (expr.And, expr.Or)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, expr.Not):
                walk(node.operand)

        walk(predicate)
        return found

    # -- select list -----------------------------------------------------------------

    def _select_items(
        self,
    ) -> tuple[list[str] | None, dict[str, str], list[AggregateSpec]]:
        if self.query.select_star:
            return None, {}, []
        projection: list[str] = []
        renames: dict[str, str] = {}
        aggregates: list[AggregateSpec] = []
        for item in self.query.items:
            if item.aggregate is not None:
                attribute = None
                if item.aggregate_arg is not None:
                    attribute = self._resolve(item.aggregate_arg).name
                aggregates.append(
                    AggregateSpec(item.aggregate, attribute, item.output_name)
                )
            else:
                assert item.column is not None
                source = self._resolve(item.column).name
                output = item.alias or source
                projection.append(output)
                if output != source:
                    renames[output] = source
        if aggregates:
            return None, {}, aggregates
        return projection, renames, aggregates

    def _check_grouping(
        self,
        projection: list[str] | None,
        aggregates: list[AggregateSpec],
        group_by: list[str],
    ) -> None:
        if group_by and not aggregates:
            raise QueryError("GROUP BY without aggregates is not supported")
        if aggregates:
            plain = [
                item.column.name
                for item in self.query.items
                if item.column is not None
            ]
            stray = [name for name in plain if name not in group_by]
            if stray:
                raise QueryError(
                    f"non-aggregated columns {stray} must appear in GROUP BY"
                )
