"""Tokenizer for the mediator's object/relational SQL subset (§2.2).

"The query in Step 3 is declarative, written in simple object/relational
SQL language."  Keywords are case-insensitive; identifiers preserve case
(collection and attribute names are case-sensitive, as in the object
world).  Strings use single quotes; ``--`` starts a line comment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "AND",
        "OR",
        "NOT",
        "JOIN",
        "ON",
        "AS",
        "BETWEEN",
        "UNION",
        "ALL",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
    }
)

_MULTI_PUNCT = ("<=", ">=", "!=", "<>")
_SINGLE_PUNCT = set("(),*.=<>")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'number', 'string', punctuation, 'eof'
    text: str
    line: int
    column: int


class SqlLexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.line, self.column)

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token("eof", "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        if char.isalpha() or char == "_":
            start = self.pos
            while self.pos < len(self.source) and (
                self._peek().isalnum() or self._peek() == "_"
            ):
                self._advance()
            text = self.source[start : self.pos]
            if text.upper() in KEYWORDS:
                return Token("keyword", text.upper(), line, column)
            return Token("ident", text, line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            start = self.pos
            seen_dot = False
            while self.pos < len(self.source):
                current = self._peek()
                if current.isdigit():
                    self._advance()
                elif current == "." and not seen_dot and self._peek(1).isdigit():
                    seen_dot = True
                    self._advance()
                else:
                    break
            return Token("number", self.source[start : self.pos], line, column)
        if char == "'":
            self._advance()
            start = self.pos
            while self.pos < len(self.source) and self._peek() != "'":
                self._advance()
            if self.pos >= len(self.source):
                raise self.error("unterminated string literal")
            text = self.source[start : self.pos]
            self._advance()
            return Token("string", text, line, column)
        for punct in _MULTI_PUNCT:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                normalized = "!=" if punct == "<>" else punct
                return Token(normalized, punct, line, column)
        if char in _SINGLE_PUNCT:
            self._advance()
            return Token(char, char, line, column)
        raise self.error(f"unexpected character {char!r}")


def tokenize_sql(source: str) -> list[Token]:
    return SqlLexer(source).tokenize()
