"""The wrapper interface (§2).

"Wrappers provide access to underlying data sources."  A wrapper exports
three things at registration (§2.1 Step 2): the schema of its collections,
its capabilities (the operations it can execute), and cost information —
statistics plus, optionally, a CDL document of cost rules, variables and
functions.  During query processing (§2.2 Steps 4–5) it accepts algebraic
subplans and returns rows.

:class:`StorageWrapper` is the standard implementation over a simulated
:class:`~repro.sources.storage_engine.StorageEngine`; the concrete
wrappers (object store, relational, flat file, web-ish) specialize what
they export.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.algebra.logical import PlanNode, strip_submits
from repro.cdl import CompiledCostInfo, compile_source
from repro.core.formulas import Value
from repro.core.statistics import CollectionStats
from repro.errors import CapabilityError
from repro.sources.pages import Row
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.interpreter import EngineExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.mediator.resilience import (
        PartialAnswer,
        ReplicaStats,
        ResilienceStats,
    )

#: The full mediator algebra; wrappers with fewer capabilities list a subset.
ALL_OPERATIONS = frozenset(
    {"scan", "select", "project", "sort", "distinct", "aggregate", "join", "union"}
)


@dataclass
class ExecutionResult:
    """Rows plus the measured response times (simulated ms).

    ``submit_log`` is filled by the *mediator* executor: one
    ``(Submit node, ExecutionResult)`` pair per dispatched subquery, the
    raw material of §4.3.1 history recording.  The cache and parallel
    counters are likewise mediator-side diagnostics (zero for plain
    wrapper executions).
    """

    rows: list[Row]
    total_time_ms: float
    time_first_ms: float = 0.0
    submit_log: list = field(default_factory=list)
    #: Subanswer-cache activity during this execution.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Simulated time the concurrent waves saved versus sequential dispatch.
    parallel_saved_ms: float = 0.0
    #: Device-level counters measured during the execution (page reads,
    #: objects processed) — surfaced as submit-span attributes by the
    #: telemetry layer.  ``None`` when the executing engine exports none.
    device_stats: dict[str, int] | None = None
    #: Degradation report when a mediator execution completed without
    #: some of its sources (``partial`` failure mode); ``None`` on a
    #: complete answer and on plain wrapper executions.
    partial: "PartialAnswer | None" = None
    #: Per-execution fault-handling counters (retries, timeouts, breaker
    #: activity); ``None`` when no resilience layer is configured.
    resilience: "ResilienceStats | None" = None
    #: True when this measurement's wall story involved fault handling
    #: (a retried attempt, a failover rescue, or a won hedge).  The
    #: calibration window skips tainted rows — fitting on fault-inflated
    #: or cross-replica actuals would corrupt the coefficients.
    fault_tainted: bool = False
    #: Per-execution replica-dispatch counters (selection, failover,
    #: hedging); ``None`` unless the catalog has replica sets.
    replication: "ReplicaStats | None" = None

    @property
    def count(self) -> int:
        return len(self.rows)

    @property
    def degraded(self) -> bool:
        """True when the answer is missing at least one source."""
        return self.partial is not None and self.partial.degraded


@dataclass
class CostInfoExport:
    """The cost-information payload of registration (§2.1 Step 2)."""

    statistics: list[CollectionStats] = field(default_factory=list)
    cdl_source: str | None = None
    functions: dict[str, Callable[..., Value]] = field(default_factory=dict)
    variables: dict[str, Value] = field(default_factory=dict)
    #: Collection names served by the wrapper.  Sources that export no
    #: statistics (HTML files, §1) still name their collections here so
    #: the mediator can route queries; defaults to the statistics' names.
    collections: list[str] = field(default_factory=list)

    def collection_names(self) -> list[str]:
        names = list(self.collections)
        for stats in self.statistics:
            if stats.name not in names:
                names.append(stats.name)
        return names

    def compiled(self) -> CompiledCostInfo:
        """Compile the CDL part (if any) and merge the programmatic part.

        Python-side functions model the paper's §2.4 point that "the
        entire library of code in the mediator ... is available to the
        wrapper implementor": anything inexpressible in the formula
        grammar (histograms, adaptive logic) ships as a callable.
        """
        if self.cdl_source is not None:
            info = compile_source(
                self.cdl_source,
                known_collections={s.name for s in self.statistics},
                known_attributes={
                    a for s in self.statistics for a in s.attributes
                },
            )
        else:
            info = CompiledCostInfo()
        for stats in self.statistics:
            if all(existing.name != stats.name for existing in info.statistics):
                info.statistics.append(stats)
        info.functions.update(self.functions)
        info.variables.update(self.variables)
        return info


class Wrapper(ABC):
    """Abstract wrapper: what the mediator sees of one data source."""

    def __init__(self, name: str, capabilities: frozenset[str] = ALL_OPERATIONS):
        self.name = name
        self.capabilities = frozenset(capabilities)

    # -- registration-time exports -------------------------------------------

    @abstractmethod
    def export_cost_info(self) -> CostInfoExport:
        """Schema statistics and (optional) cost rules."""

    def collection_names(self) -> list[str]:
        return sorted(self.export_cost_info().collection_names())

    def unwrap(self) -> "Wrapper":
        """The innermost wrapper, past any decorators (fault injectors).

        Plain wrappers return themselves; decorating wrappers such as
        :class:`~repro.wrappers.faults.FaultInjector` override this to
        delegate inward.
        """
        return self

    # -- query-time execution ---------------------------------------------------

    @abstractmethod
    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a subplan (without Submit nodes) and return rows and
        the measured response time."""

    def check_capabilities(self, plan: PlanNode) -> None:
        """Raise :class:`CapabilityError` if the plan uses an operator this
        wrapper cannot run (the paper assumes full capability; sources
        like flat files cannot honour that — see [KTV97])."""
        for node in plan.walk():
            if node.operator_name == "submit":
                continue
            if node.operator_name not in self.capabilities:
                raise CapabilityError(
                    f"wrapper {self.name!r} cannot execute "
                    f"{node.operator_name!r} (capabilities: "
                    f"{sorted(self.capabilities)})"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class StorageWrapper(Wrapper):
    """A wrapper over a simulated storage engine.

    Subclasses override :meth:`cost_rules_cdl` to export rules; the base
    exports statistics only — the "calibration-like" end of the paper's
    spectrum (everything comes from the generic model).
    """

    def __init__(
        self,
        name: str,
        engine: StorageEngine,
        capabilities: frozenset[str] = ALL_OPERATIONS,
        export_statistics: bool = True,
    ) -> None:
        super().__init__(name, capabilities)
        self.engine = engine
        self.executor = EngineExecutor(engine)
        #: When False, registration exports collection names only — the
        #: "data sources do not report needed statistical information"
        #: case of §1 (the mediator falls back to §6 standard values).
        self.export_statistics = export_statistics

    def cost_rules_cdl(self) -> str | None:
        """CDL source of the wrapper's cost rules (None = none exported)."""
        return None

    def cost_functions(self) -> dict[str, Callable[..., Value]]:
        """Python-side functions referenced by the exported rules."""
        return {}

    def cost_variables(self) -> dict[str, Value]:
        return {}

    def export_cost_info(self) -> CostInfoExport:
        names = self.engine.collection_names()
        if not self.export_statistics:
            return CostInfoExport(collections=list(names))
        statistics = [self.engine.export_statistics(name) for name in names]
        return CostInfoExport(
            statistics=statistics,
            cdl_source=self.cost_rules_cdl(),
            functions=self.cost_functions(),
            variables=self.cost_variables(),
        )

    def execute(self, plan: PlanNode) -> ExecutionResult:
        plan = strip_submits(plan)
        self.check_capabilities(plan)
        clock = self.engine.clock
        start = clock.now_ms
        pages_before = clock.stats.page_reads
        objects_before = clock.stats.objects_processed
        time_first: float | None = None
        rows: list[Row] = []
        for row in self.executor._run(plan):
            if time_first is None:
                time_first = clock.elapsed_since(start)
            rows.append(row)
        total = clock.elapsed_since(start)
        return ExecutionResult(
            rows=rows,
            total_time_ms=total,
            # Discovering emptiness costs the full execution: report the
            # elapsed total rather than understating TimeFirst as zero.
            time_first_ms=time_first if time_first is not None else total,
            device_stats={
                "page_reads": clock.stats.page_reads - pages_before,
                "objects_processed": clock.stats.objects_processed
                - objects_before,
            },
        )
