"""Wrapper over the simulated relational engine.

By default this wrapper exports **statistics only** — the
calibration-style end of the paper's spectrum: the mediator costs its
operations with the generic model.  With ``export_rules=True`` it also
ships index-lookup and scan rules derived from its physical layout,
letting experiments compare the same source under both regimes.
"""

from __future__ import annotations

from repro.sources.relationaldb import RelationalDatabase
from repro.wrappers.base import StorageWrapper


class RelationalWrapper(StorageWrapper):
    """Wrapper for :class:`~repro.sources.relationaldb.RelationalDatabase`."""

    def __init__(
        self,
        name: str,
        database: RelationalDatabase,
        export_rules: bool = False,
    ) -> None:
        super().__init__(name, database)
        self.database = database
        self.export_rules = export_rules

    def cost_rules_cdl(self) -> str | None:
        if not self.export_rules:
            return None
        profile = self.database.clock.profile
        parts: list[str] = [
            f"// Cost rules exported by relational wrapper {self.name!r}.",
            f"var IO = {profile.io_ms};",
            f"var PerRow = {profile.cpu_ms_per_object};",
            f"var Eval = {profile.cpu_ms_per_eval};",
        ]
        for table_name in self.database.collection_names():
            table = self.database.collection(table_name)
            pages = table.file.page_count
            parts.append(
                f"costrule scan({table_name}) {{\n"
                f"    TimeFirst = IO;\n"
                f"    TotalTime = IO * {pages}"
                f" + {table_name}.CountObject * PerRow;\n"
                f"}}"
            )
            for column, tree in sorted(table.indexes.items()):
                # Exact-match lookup: index descent + the matching rows,
                # each on (pessimistically) its own page.
                parts.append(
                    f"costrule select({table_name}, {column} = V) {{\n"
                    f"    CountObject = {table_name}.CountObject"
                    f" / {table_name}.{column}.CountDistinct;\n"
                    f"    TotalSize = CountObject * {table_name}.ObjectSize;\n"
                    f"    TotalTime = {tree.height()} * Eval"
                    f" + CountObject * (IO + PerRow);\n"
                    f"    TimeFirst = {tree.height()} * Eval + IO;\n"
                    f"}}"
                )
        return "\n".join(parts)
