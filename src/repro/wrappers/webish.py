"""A high-latency remote source ("Internet" class, §1/§7).

Models a web-service-like source: every request pays a round-trip
latency and results pay per-byte transfer, on top of a modest server-side
engine.  The wrapper knows its own latency, so it exports wrapper-scope
rules whose ``TimeFirst`` is dominated by the round trip — information the
mediator's generic model has no way to guess (the paper's point (iii):
"communication costs are difficult to determine").

Per the paper we keep communication cost *uniform per wrapper* (time-
varying load is listed as future work).
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.logical import PlanNode
from repro.sources.clock import CostProfile, SimClock
from repro.sources.pages import Row
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import ExecutionResult, StorageWrapper


class WebSourceWrapper(StorageWrapper):
    """A remote source behind a simulated network."""

    def __init__(
        self,
        name: str,
        *,
        latency_ms: float = 800.0,
        ms_per_byte: float = 0.01,
        server_io_ms: float = 2.0,
        server_cpu_ms: float = 0.2,
    ) -> None:
        profile = CostProfile(
            io_ms=server_io_ms,
            cpu_ms_per_object=server_cpu_ms,
            cpu_ms_per_eval=0.05,
            net_ms_per_message=latency_ms,
            net_ms_per_byte=ms_per_byte,
        )
        super().__init__(name, StorageEngine(SimClock(profile)))
        self.latency_ms = latency_ms
        self.ms_per_byte = ms_per_byte

    def add_collection(
        self,
        collection: str,
        rows: Iterable[Row],
        *,
        object_size: int = 200,
        indexed_attributes: Iterable[str] = (),
    ) -> None:
        self.engine.create_collection(
            collection,
            rows,
            object_size=object_size,
            indexed_attributes=indexed_attributes,
            placement="sequential",
        )

    def execute(self, plan: PlanNode) -> ExecutionResult:
        clock = self.engine.clock
        start = clock.now_ms
        clock.charge_message()  # the request round trip
        result = super().execute(plan)
        # Ship the result rows back.
        payload = sum(
            self.engine.collection(name).object_size
            for name in plan.base_collections()
            if name in self.engine.collection_names()
        )
        per_row = max(payload, 1)
        clock.charge_message(payload_bytes=per_row * len(result.rows))
        total = clock.elapsed_since(start)
        return ExecutionResult(
            rows=result.rows,
            total_time_ms=total,
            time_first_ms=result.time_first_ms + self.latency_ms,
        )

    def cost_rules_cdl(self) -> str:
        per_object = (
            self.engine.clock.profile.cpu_ms_per_object
            + self.ms_per_byte * 200.0
        )
        return (
            f"// Remote-source rules exported by {self.name!r}: every\n"
            f"// operation pays the round-trip latency twice (request and\n"
            f"// response) plus per-object server and transfer time.\n"
            f"var Latency = {self.latency_ms};\n"
            f"var PerObject = {per_object};\n"
            "costrule scan(C) {\n"
            "    TimeFirst = Latency;\n"
            "    TotalTime = 2 * Latency + C.CountObject * PerObject;\n"
            "}\n"
            "costrule select(C, P) {\n"
            "    TimeFirst = Latency;\n"
            "    TotalTime = 2 * Latency + C.CountObject * PerObject;\n"
            "}\n"
        )
