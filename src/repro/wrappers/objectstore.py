"""Wrapper over the simulated object store, exporting Yao cost rules.

This wrapper is the paper's showcase: the generic (calibrated) mediator
model assumes page fetches proportional to selectivity, but the object
store's index scan follows Yao's law, so the wrapper implementor exports
the corrected formula of Figure 13.  The rules are *generated* from the
physical layout the wrapper actually knows — page counts, clustering,
device constants — one predicate-scope rule per (collection, indexed
attribute, comparison operator), exactly the "several rules, each rule
more and more specific" workflow §3.3.2 describes.

For a **clustered** attribute the exported formula reads consecutive
pages (``ceil(selected / objects_per_page)``) instead of Yao — the case
§7 highlights as impossible for a calibrating model to capture.
"""

from __future__ import annotations

from repro.sources.objectdb import ObjectDatabase
from repro.sources.storage_engine import INDEX_VISIT_MS
from repro.wrappers.base import StorageWrapper

#: Comparison operators a single-sided range rule is emitted for.
_RANGE_OPS = ("<", "<=", ">", ">=")


class ObjectStoreWrapper(StorageWrapper):
    """Wrapper for :class:`~repro.sources.objectdb.ObjectDatabase`."""

    def __init__(
        self,
        name: str,
        database: ObjectDatabase,
        export_rules: bool = True,
    ) -> None:
        super().__init__(name, database)
        self.database = database
        self.export_rules = export_rules

    # -- rule generation ----------------------------------------------------------

    def cost_rules_cdl(self) -> str | None:
        if not self.export_rules:
            return None
        profile = self.database.clock.profile
        parts: list[str] = [
            "// Cost rules exported by the object-store wrapper "
            f"{self.name!r} (Figure 13 style).",
            f"var IO = {profile.io_ms};",
            f"var Output = {profile.cpu_ms_per_object};",
            f"var IndexVisit = {INDEX_VISIT_MS};",
        ]
        for collection_name in self.database.collection_names():
            parts.append(self._collection_rules(collection_name))
        return "\n".join(parts)

    def _collection_rules(self, collection_name: str) -> str:
        collection = self.database.collection(collection_name)
        pages = collection.file.page_count
        count = max(1, collection.count)
        per_page = max(1.0, count / max(1, pages))
        clustering = self.database.clustering.get(collection_name, "sequential")
        height = max(
            (tree.height() for tree in collection.indexes.values()), default=1
        )
        rules: list[str] = [
            f"// --- {collection_name}: {pages} pages, "
            f"{per_page:.1f} objects/page, clustering={clustering}",
            # Sequential scan of the whole extent.
            f"costrule scan({collection_name}) {{\n"
            f"    TimeFirst = IO;\n"
            f"    TotalTime = IO * {pages} + {collection_name}.CountObject * Output;\n"
            f"}}",
        ]
        for attribute, _tree in sorted(collection.indexes.items()):
            clustered_on_attr = clustering == f"clustered:{attribute}"
            rules.append(
                self._equality_rule(
                    collection_name, attribute, pages, per_page, height,
                    clustered_on_attr,
                )
            )
            for op in _RANGE_OPS:
                rules.append(
                    self._range_rule(
                        collection_name, attribute, op, pages, per_page, height,
                        clustered_on_attr,
                    )
                )
        return "\n".join(rules)

    @staticmethod
    def _pages_formula(pages: int, per_page: float, clustered: bool) -> str:
        """Pages fetched as a function of the local ``CountObject``."""
        if clustered:
            # Selected objects sit on consecutive pages.
            return f"ceil(CountObject / {per_page}) + 1"
        return f"{pages} * (1 - exp(-1 * (CountObject / {pages})))"

    def _time_formulas(
        self, pages: int, per_page: float, height: int, clustered: bool
    ) -> str:
        pages_expr = self._pages_formula(pages, per_page, clustered)
        return (
            f"    TotalTime = IndexVisit * {height}"
            f" + IO * ({pages_expr})"
            f" + CountObject * Output;\n"
            f"    TimeFirst = IndexVisit * {height} + IO;\n"
        )

    def _equality_rule(
        self,
        collection: str,
        attribute: str,
        pages: int,
        per_page: float,
        height: int,
        clustered: bool,
    ) -> str:
        return (
            f"costrule select({collection}, {attribute} = V) {{\n"
            f"    CountObject = {collection}.CountObject"
            f" / {collection}.{attribute}.CountDistinct;\n"
            f"    TotalSize = CountObject * {collection}.ObjectSize;\n"
            + self._time_formulas(pages, per_page, height, clustered)
            + "}"
        )

    def _range_rule(
        self,
        collection: str,
        attribute: str,
        op: str,
        pages: int,
        per_page: float,
        height: int,
        clustered: bool,
    ) -> str:
        span = (
            f"({collection}.{attribute}.Max - {collection}.{attribute}.Min)"
        )
        if op in ("<", "<="):
            fraction = f"(V - {collection}.{attribute}.Min) / {span}"
        else:
            fraction = f"({collection}.{attribute}.Max - V) / {span}"
        return (
            f"costrule select({collection}, {attribute} {op} V) {{\n"
            f"    CountObject = {collection}.CountObject"
            f" * clamp01({fraction});\n"
            f"    TotalSize = CountObject * {collection}.ObjectSize;\n"
            + self._time_formulas(pages, per_page, height, clustered)
            + "}"
        )
