"""Wrappers: the access layer between mediator and data sources (§2).

Four concrete wrapper families cover the heterogeneity spectrum the paper
motivates:

* :class:`~repro.wrappers.objectstore.ObjectStoreWrapper` — exports full
  Yao/clustering cost rules (the Figure 13 showcase);
* :class:`~repro.wrappers.relational.RelationalWrapper` — statistics only
  by default (the calibration regime), rules on request;
* :class:`~repro.wrappers.flatfile.FlatFileWrapper` — scan-only, exports
  nothing (the "HTML files" class);
* :class:`~repro.wrappers.webish.WebSourceWrapper` — latency-dominated
  remote source exporting communication-aware rules.
"""

from repro.wrappers.base import (
    ALL_OPERATIONS,
    CostInfoExport,
    ExecutionResult,
    StorageWrapper,
    Wrapper,
)
from repro.wrappers.faults import FaultInjector, FaultLog, FaultProfile
from repro.wrappers.flatfile import FlatFileWrapper, parse_delimited
from repro.wrappers.interpreter import EngineExecutor
from repro.wrappers.objectstore import ObjectStoreWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.webish import WebSourceWrapper

__all__ = [
    "ALL_OPERATIONS",
    "CostInfoExport",
    "EngineExecutor",
    "ExecutionResult",
    "FaultInjector",
    "FaultLog",
    "FaultProfile",
    "FlatFileWrapper",
    "ObjectStoreWrapper",
    "RelationalWrapper",
    "StorageWrapper",
    "WebSourceWrapper",
    "Wrapper",
    "parse_delimited",
]
