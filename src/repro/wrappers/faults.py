"""Deterministic fault injection for wrappers.

The paper's mediator assumes every registered wrapper answers every
subquery; the surrounding DISCO project's defining problem was exactly
the opposite — sources that are slow, flaky, or unavailable.  To grow
(and test) the fault-tolerance layer without touching any source code,
:class:`FaultInjector` wraps an arbitrary :class:`~repro.wrappers.base.
Wrapper` and perturbs its *execution* behaviour according to a
:class:`FaultProfile`:

* ``unavailable`` — the source is down; every attempt raises
  :class:`~repro.errors.SourceUnavailableError` after a configurable
  connection-timeout wait;
* ``error_probability`` — each attempt independently fails with a
  :class:`~repro.errors.TransientSourceError` (a retry may succeed);
* ``latency_multiplier`` / ``latency_probability`` — response times are
  stretched by ×k on a (possibly random) subset of executions, modelling
  load spikes;
* ``trickle`` — rows only arrive with the final packet:
  ``TimeFirst`` degrades to ``TotalTime``;
* ``fail_after_rows`` — the source dies mid-answer once it has produced
  more than N rows; the partial rows are *discarded* (never returned,
  never cacheable) but the elapsed time is still charged.

Everything is deterministic: randomness comes from one
:class:`random.Random` seeded per injector, and all delays are simulated
milliseconds on the mediator's clock, never wall time.  With the default
(all-zero) profile the injector is perfectly transparent — results,
engine clocks, and registration exports are byte-identical to the
wrapped wrapper's, which the zero-probability equivalence test pins.

Registration-time behaviour (cost info, collection names, capabilities)
is always delegated untouched: fault injection models a *runtime*
pathology, not a schema change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebra.logical import PlanNode
from repro.errors import SourceUnavailableError, TransientSourceError
from repro.wrappers.base import CostInfoExport, ExecutionResult, Wrapper


@dataclass
class FaultProfile:
    """Per-wrapper fault configuration (all defaults = no faults)."""

    #: The source is down: every execution fails.
    unavailable: bool = False
    #: Simulated time an attempt waits before discovering the source is
    #: down (a connection timeout).
    unavailable_latency_ms: float = 0.0
    #: Probability that one execution fails transiently.
    error_probability: float = 0.0
    #: Simulated time a transient failure takes to surface.
    error_latency_ms: float = 0.0
    #: Response-time stretch factor for latency spikes (1.0 = none).
    latency_multiplier: float = 1.0
    #: Share of executions the latency spike applies to (1.0 = all).
    latency_probability: float = 1.0
    #: Rows arrive only at the end: ``TimeFirst`` becomes ``TotalTime``.
    trickle: bool = False
    #: Fail (transiently) once an answer exceeds this many rows; ``None``
    #: disables.  The elapsed execution time is still charged.
    fail_after_rows: int | None = None
    #: Seed of the injector's private RNG — same seed, same fault train.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_probability <= 1.0:
            raise ValueError(
                f"error_probability must be in [0, 1], got {self.error_probability}"
            )
        if not 0.0 <= self.latency_probability <= 1.0:
            raise ValueError(
                f"latency_probability must be in [0, 1], got {self.latency_probability}"
            )
        if self.latency_multiplier < 0:
            raise ValueError(
                f"latency_multiplier must be >= 0, got {self.latency_multiplier}"
            )

    @property
    def benign(self) -> bool:
        """True when the profile perturbs nothing at all."""
        return (
            not self.unavailable
            and self.error_probability == 0.0
            and self.latency_multiplier == 1.0
            and not self.trickle
            and self.fail_after_rows is None
        )


@dataclass
class FaultLog:
    """Counters of what the injector actually did (test observability)."""

    executions: int = 0
    unavailable: int = 0
    transient_errors: int = 0
    latency_spikes: int = 0
    trickles: int = 0
    mid_answer_failures: int = 0

    @property
    def injected(self) -> int:
        return (
            self.unavailable
            + self.transient_errors
            + self.latency_spikes
            + self.trickles
            + self.mid_answer_failures
        )


class FaultInjector(Wrapper):
    """Wraps any wrapper and injects the faults of a profile.

    The injector *is* a wrapper: it registers under the inner wrapper's
    name, delegates every registration-time export, and perturbs only
    :meth:`execute`.  Faults surface as :class:`~repro.errors.
    SourceFaultError` subclasses carrying the simulated time the failed
    attempt consumed, which the scheduler charges to the mediator clock.
    """

    def __init__(self, inner: Wrapper, profile: FaultProfile | None = None) -> None:
        super().__init__(inner.name, inner.capabilities)
        self.inner = inner
        self.profile = profile if profile is not None else FaultProfile()
        self.log = FaultLog()
        self._rng = random.Random(self.profile.seed)

    # -- registration-time delegation ----------------------------------------

    def export_cost_info(self) -> CostInfoExport:
        return self.inner.export_cost_info()

    def unwrap(self) -> Wrapper:
        return self.inner.unwrap()

    # -- fault controls -------------------------------------------------------

    def set_profile(self, profile: FaultProfile) -> None:
        """Swap the fault profile (e.g. to revive a downed source);
        reseeds the RNG so fault trains stay reproducible."""
        self.profile = profile
        self._rng = random.Random(profile.seed)

    # -- query-time execution -------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        profile = self.profile
        self.log.executions += 1
        if profile.unavailable:
            self.log.unavailable += 1
            raise SourceUnavailableError(
                f"source {self.name!r} is unavailable",
                elapsed_ms=profile.unavailable_latency_ms,
            )
        if profile.error_probability > 0.0 and (
            self._rng.random() < profile.error_probability
        ):
            self.log.transient_errors += 1
            raise TransientSourceError(
                f"source {self.name!r} failed transiently",
                elapsed_ms=profile.error_latency_ms,
            )
        result = self.inner.execute(plan)
        if (
            profile.fail_after_rows is not None
            and len(result.rows) > profile.fail_after_rows
        ):
            # The source died mid-answer: the rows it already shipped are
            # an unusable prefix (discarded, never cached) but the
            # mediator still waited for the whole doomed execution.
            self.log.mid_answer_failures += 1
            raise TransientSourceError(
                f"source {self.name!r} failed after "
                f"{profile.fail_after_rows} row(s)",
                elapsed_ms=result.total_time_ms,
            )
        if profile.latency_multiplier != 1.0 and (
            profile.latency_probability >= 1.0
            or self._rng.random() < profile.latency_probability
        ):
            self.log.latency_spikes += 1
            result.total_time_ms *= profile.latency_multiplier
            result.time_first_ms *= profile.latency_multiplier
        if profile.trickle:
            self.log.trickles += 1
            result.time_first_ms = result.total_time_ms
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {self.name!r} over {self.inner!r}>"


__all__ = ["FaultInjector", "FaultLog", "FaultProfile"]
