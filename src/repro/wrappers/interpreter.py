"""A logical-plan interpreter over a storage engine.

Wrappers receive algebraic subplans from the mediator (§2.2 Step 4) and
execute them against their data source.  This interpreter implements the
full mediator algebra over :class:`~repro.sources.storage_engine.
StorageEngine` primitives, choosing the access path the way a real source
does: a selection directly over a scan of an indexed attribute becomes an
index scan; everything else pipelines over a sequential scan.

All row processing charges the engine's simulated clock, so execution
"measures" the response times the cost model is trying to predict.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.algebra.expressions import (
    AttributeRef,
    Comparison,
    Literal,
    Predicate,
)
from repro.algebra.logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    Sort,
    Submit,
    Union,
)
from repro.errors import CapabilityError, PlanError
from repro.sources.pages import Row
from repro.sources.storage_engine import StorageEngine


class EngineExecutor:
    """Executes logical plans against one storage engine."""

    def __init__(self, engine: StorageEngine) -> None:
        self.engine = engine

    @property
    def clock(self):
        return self.engine.clock

    def _eval_charge(self, rows: int = 1) -> None:
        self.clock.advance(self.clock.profile.cpu_ms_per_eval * rows)

    # -- entry point ---------------------------------------------------------

    def execute(self, plan: PlanNode) -> list[Row]:
        """Run a plan to completion and return its rows."""
        return list(self._run(plan))

    def _run(self, node: PlanNode) -> Iterator[Row]:
        if isinstance(node, Submit):
            raise CapabilityError("wrappers do not execute submit nodes")
        if isinstance(node, Scan):
            yield from self.engine.seq_scan(node.collection)
        elif isinstance(node, Select):
            yield from self._run_select(node)
        elif isinstance(node, Project):
            yield from self._run_project(node)
        elif isinstance(node, Sort):
            yield from self._run_sort(node)
        elif isinstance(node, Distinct):
            yield from self._run_distinct(node)
        elif isinstance(node, Aggregate):
            yield from self._run_aggregate(node)
        elif isinstance(node, Join):
            yield from self._run_join(node)
        elif isinstance(node, Union):
            yield from self._run(node.left)
            yield from self._run(node.right)
        else:
            raise PlanError(f"cannot execute operator {node.operator_name!r}")

    # -- selection with access-path choice ---------------------------------------

    def _index_access(
        self, node: Select
    ) -> tuple[str, str, dict[str, Any], list[Predicate]] | None:
        """If the select sits on a scan of an indexed attribute, return
        (collection, attribute, index_scan kwargs, residual conjuncts).

        All conjuncts restricting one indexed attribute combine into a
        single index probe (``a >= 100 AND a <= 599`` becomes one range
        scan), as any real source would evaluate them.
        """
        if not isinstance(node.child, Scan):
            return None
        collection = node.child.collection
        conjuncts = list(node.predicate.conjuncts())
        if not conjuncts:
            return None
        # Group the index-usable comparisons by attribute.
        usable: dict[str, list[int]] = {}
        for index, conjunct in enumerate(conjuncts):
            if not isinstance(conjunct, Comparison):
                continue
            comparison = conjunct.normalized()
            if not comparison.is_attr_value or comparison.op == "!=":
                continue
            attribute = comparison.left
            assert isinstance(attribute, AttributeRef)
            if self.engine.has_index(collection, attribute.name):
                usable.setdefault(attribute.name, []).append(index)
        if not usable:
            return None
        # Prefer the attribute with the most restrictions (equality or a
        # two-sided range beats a single bound).
        attribute_name = max(usable, key=lambda name: len(usable[name]))
        chosen = usable[attribute_name]
        kwargs = self._combined_index_kwargs(
            [conjuncts[i].normalized() for i in chosen]  # type: ignore[attr-defined]
        )
        if kwargs is None:
            return None
        residual = [c for i, c in enumerate(conjuncts) if i not in chosen]
        return collection, attribute_name, kwargs, residual

    @staticmethod
    def _combined_index_kwargs(
        comparisons: list[Comparison],
    ) -> dict[str, Any] | None:
        """Merge comparisons on one attribute into index_scan kwargs."""
        low: Any = None
        high: Any = None
        low_inclusive = True
        high_inclusive = True
        for comparison in comparisons:
            literal = comparison.right
            assert isinstance(literal, Literal)
            value = literal.value
            op = comparison.op
            if op == "=":
                return {"value": value}
            if op in ("<", "<="):
                if high is None or value < high or (value == high and op == "<"):
                    high = value
                    high_inclusive = op == "<="
            elif op in (">", ">="):
                if low is None or value > low or (value == low and op == ">"):
                    low = value
                    low_inclusive = op == ">="
        if low is None and high is None:
            return None
        kwargs: dict[str, Any] = {}
        if low is not None:
            kwargs["low"] = low
            kwargs["low_inclusive"] = low_inclusive
        if high is not None:
            kwargs["high"] = high
            kwargs["high_inclusive"] = high_inclusive
        return kwargs

    def _disjunctive_index_access(
        self, node: Select
    ) -> tuple[str, str, list[Any], list[Predicate]] | None:
        """Key-set selections: an OR-chain (or single conjunct) of
        equalities on one indexed attribute — the shape bind-join probes
        take — answered by one index lookup per key.

        Returns (collection, attribute, values, residual conjuncts) where
        the residual applies on top of the keyed lookups.
        """
        if not isinstance(node.child, Scan):
            return None
        collection = node.child.collection
        conjuncts = list(node.predicate.conjuncts())
        for index, conjunct in enumerate(conjuncts):
            values = _equality_key_set(conjunct)
            if values is None:
                continue
            attribute, keys = values
            if len(keys) < 2:
                continue  # single equality is the plain index path
            if not self.engine.has_index(collection, attribute):
                continue
            residual = conjuncts[:index] + conjuncts[index + 1 :]
            return collection, attribute, keys, residual
        return None

    def _run_select(self, node: Select) -> Iterator[Row]:
        disjunctive = self._disjunctive_index_access(node)
        if disjunctive is not None:
            collection, attribute, keys, residual = disjunctive
            for key in keys:
                for row in self.engine.index_scan(
                    collection, attribute, value=key
                ):
                    if residual:
                        self._eval_charge()
                        if not all(p.evaluate(row) for p in residual):
                            continue
                    yield row
            return
        access = self._index_access(node)
        if access is not None:
            collection, attribute, kwargs, residual = access
            for row in self.engine.index_scan(collection, attribute, **kwargs):
                if residual:
                    self._eval_charge()
                    if not all(p.evaluate(row) for p in residual):
                        continue
                yield row
            return
        for row in self._run(node.child):
            self._eval_charge()
            if node.predicate.evaluate(row):
                yield row

    # -- other operators -----------------------------------------------------------

    def _run_project(self, node: Project) -> Iterator[Row]:
        wanted = node.attributes
        for row in self._run(node.child):
            self._eval_charge()
            yield {
                name: AttributeRef(node.source_of(name)).evaluate(row)
                for name in wanted
            }

    def _run_sort(self, node: Sort) -> Iterator[Row]:
        rows = list(self._run(node.child))
        self._eval_charge(len(rows))

        def key(row: Row) -> tuple:
            return tuple(AttributeRef(k).evaluate(row) for k in node.keys)

        yield from sorted(rows, key=key, reverse=node.descending)

    def _run_distinct(self, node: Distinct) -> Iterator[Row]:
        seen: set[tuple] = set()
        for row in self._run(node.child):
            self._eval_charge()
            fingerprint = tuple(sorted(row.items()))
            if fingerprint not in seen:
                seen.add(fingerprint)
                yield row

    def _run_aggregate(self, node: Aggregate) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = {}
        for row in self._run(node.child):
            self._eval_charge()
            key = tuple(AttributeRef(k).evaluate(row) for k in node.group_by)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        for key, members in groups.items():
            result: Row = dict(zip(node.group_by, key))
            for spec in node.aggregates:
                result[spec.alias] = _aggregate_value(spec, members)
            yield result

    def _run_join(self, node: Join) -> Iterator[Row]:
        """Hash join on the equi-join attribute (wrapper-local join)."""
        left_attr = node.left_attribute
        right_attr = node.right_attribute
        table: dict[Any, list[Row]] = {}
        for row in self._run(node.right):
            self._eval_charge()
            table.setdefault(right_attr.evaluate(row), []).append(row)
        for row in self._run(node.left):
            self._eval_charge()
            for match in table.get(left_attr.evaluate(row), ()):
                yield _merge_rows(row, match, node)


def _equality_key_set(predicate: Predicate) -> tuple[str, list[Any]] | None:
    """If ``predicate`` is ``a = v`` or an OR-chain of equalities on one
    attribute, return (attribute, values); otherwise None."""
    from repro.algebra.expressions import Or

    if isinstance(predicate, Or):
        left = _equality_key_set(predicate.left)
        right = _equality_key_set(predicate.right)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1] + right[1]
    if isinstance(predicate, Comparison):
        comparison = predicate.normalized()
        if comparison.op == "=" and comparison.is_attr_value:
            attribute = comparison.left
            literal = comparison.right
            assert isinstance(attribute, AttributeRef)
            assert isinstance(literal, Literal)
            return attribute.name, [literal.value]
    return None


def _merge_rows(left: Row, right: Row, node: Join) -> Row:
    """Combine two joined rows, qualifying colliding attribute names."""
    merged = dict(left)
    left_cols = node.left.base_collections()
    right_cols = node.right.base_collections()
    for key, value in right.items():
        if key in merged and merged[key] != value:
            left_name = next(iter(left_cols)) if len(left_cols) == 1 else "left"
            right_name = next(iter(right_cols)) if len(right_cols) == 1 else "right"
            merged[f"{left_name}.{key}"] = merged.pop(key)
            merged[f"{right_name}.{key}"] = value
        else:
            merged[key] = value
    return merged


def _aggregate_value(spec: AggregateSpec, rows: list[Row]) -> Any:
    if spec.function == "count":
        if spec.attribute is None:
            return len(rows)
        return sum(
            1 for r in rows if AttributeRef(spec.attribute).evaluate(r) is not None
        )
    values = [AttributeRef(spec.attribute).evaluate(r) for r in rows]  # type: ignore[arg-type]
    values = [v for v in values if v is not None]
    if not values:
        return None
    if spec.function == "sum":
        return sum(values)
    if spec.function == "avg":
        return sum(values) / len(values)
    if spec.function == "min":
        return min(values)
    return max(values)
