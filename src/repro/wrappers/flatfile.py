"""A scan-only flat-file wrapper — the "HTML files" class of source (§1).

"Data sources do not report needed statistical information (e.g., HTML
files)": this wrapper models exactly that class.  It serves one collection
parsed from delimited text, executes only scans, selections and
projections (every query reads the whole file), and by default exports
**no statistics and no cost rules** — forcing the mediator onto its
generic model with the §6 "standard values".  Constructing it with
``export_statistics=True`` models a wrapper implementor who sampled the
file once, the "graceful improvement" path of §1.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import StorageError
from repro.sources.clock import CostProfile, SimClock
from repro.sources.pages import Row
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import CostInfoExport, StorageWrapper

#: A slow device: uncached file reads, cheap per-line processing.
FILE_DEVICE = CostProfile(io_ms=12.0, cpu_ms_per_object=0.3, cpu_ms_per_eval=0.1)

#: The operations a grep-like source can run.
FILE_CAPABILITIES = frozenset({"scan", "select", "project"})


def parse_delimited(
    text: str, columns: list[str], delimiter: str = ","
) -> list[Row]:
    """Parse delimited text into rows, inferring int/float cell types."""
    rows: list[Row] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        cells = [cell.strip() for cell in line.split(delimiter)]
        if len(cells) != len(columns):
            raise StorageError(
                f"line {line_number}: expected {len(columns)} fields, "
                f"got {len(cells)}"
            )
        rows.append({name: _infer(cell) for name, cell in zip(columns, cells)})
    return rows


def _infer(cell: str):
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


class FlatFileWrapper(StorageWrapper):
    """One delimited file exposed as one scan-only collection."""

    def __init__(
        self,
        name: str,
        collection: str,
        *,
        rows: Iterable[Row] | None = None,
        path: str | Path | None = None,
        columns: list[str] | None = None,
        delimiter: str = ",",
        export_statistics: bool = False,
        line_size: int = 80,
    ) -> None:
        if (rows is None) == (path is None):
            raise StorageError("provide exactly one of rows= or path=")
        if path is not None:
            if columns is None:
                raise StorageError("path= requires columns=")
            text = Path(path).read_text(encoding="utf-8")
            rows = parse_delimited(text, columns, delimiter)
        engine = StorageEngine(SimClock(FILE_DEVICE))
        engine.create_collection(
            collection,
            rows or [],
            object_size=line_size,
            indexed_attributes=(),  # files have no indexes
            placement="sequential",
        )
        super().__init__(name, engine, capabilities=FILE_CAPABILITIES)
        self.collection_name = collection
        self.export_statistics = export_statistics

    def export_cost_info(self) -> CostInfoExport:
        if self.export_statistics:
            return super().export_cost_info()
        # The honest HTML-file case: the mediator learns the collection
        # exists, nothing more.
        return CostInfoExport(collections=[self.collection_name])
