"""Deterministic OO7 database generator.

Builds the full OO7 entity graph of a configuration as plain row dicts,
and loads it into an :class:`~repro.sources.objectdb.ObjectDatabase`
(the ObjectStore stand-in of the §5 experiment).

Determinism: every run with the same config and seed produces the same
database, so measured simulated times are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.oo7 import schema
from repro.oo7.schema import OO7Config
from repro.sources.objectdb import ObjectDatabase
from repro.sources.pages import Row


@dataclass
class OO7Data:
    """The generated rows of one OO7 database, per extent."""

    config: OO7Config
    atomic_parts: list[Row] = field(default_factory=list)
    connections: list[Row] = field(default_factory=list)
    composite_parts: list[Row] = field(default_factory=list)
    documents: list[Row] = field(default_factory=list)
    base_assemblies: list[Row] = field(default_factory=list)
    complex_assemblies: list[Row] = field(default_factory=list)
    modules: list[Row] = field(default_factory=list)

    def extent_rows(self) -> dict[str, list[Row]]:
        return {
            "AtomicParts": self.atomic_parts,
            "Connections": self.connections,
            "CompositeParts": self.composite_parts,
            "Documents": self.documents,
            "BaseAssemblies": self.base_assemblies,
            "ComplexAssemblies": self.complex_assemblies,
            "Modules": self.modules,
        }


def generate(config: OO7Config = schema.TINY, seed: int = 7) -> OO7Data:
    """Generate the OO7 entity graph for a configuration."""
    rng = random.Random(seed)
    data = OO7Data(config=config)

    # Composite parts, their documents and atomic-part graphs.
    atomic_id = 0
    for comp_id in range(config.num_composite_parts):
        data.composite_parts.append(
            {
                "Id": comp_id,
                "buildDate": rng.randint(
                    schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
                ),
                "type": rng.choice(schema.PART_TYPES),
                "rootPart": atomic_id,
                "docId": comp_id,
            }
        )
        data.documents.append(
            {
                "Id": comp_id,
                "title": f"Composite Part #{comp_id:05d}",
                "compPartId": comp_id,
            }
        )
        members = list(
            range(atomic_id, atomic_id + config.num_atomic_per_composite)
        )
        for part_id in members:
            data.atomic_parts.append(
                {
                    "Id": part_id,
                    "buildDate": rng.randint(
                        schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
                    ),
                    "type": rng.choice(schema.PART_TYPES),
                    "x": rng.randint(0, 99999),
                    "y": rng.randint(0, 99999),
                    "partOf": comp_id,
                }
            )
            # Each atomic part connects to k others of the same composite
            # (the OO7 ring-plus-random wiring).
            ring_next = members[(part_id - atomic_id + 1) % len(members)]
            targets = [ring_next] + [
                rng.choice(members)
                for _ in range(config.num_connections_per_atomic - 1)
            ]
            for to_id in targets:
                data.connections.append(
                    {
                        "fromId": part_id,
                        "toId": to_id,
                        "type": rng.choice(schema.PART_TYPES),
                        "length": rng.randint(1, 1000),
                    }
                )
        atomic_id += config.num_atomic_per_composite

    # Assembly hierarchy: a complete k-ary tree per module.
    complex_id = 0
    base_id = 0
    for module_id in range(config.num_modules):
        data.modules.append(
            {"Id": module_id, "buildDate": rng.randint(
                schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
            )}
        )
        level_nodes: list[int] = []
        root_id = complex_id
        data.complex_assemblies.append(
            {
                "Id": root_id,
                "buildDate": rng.randint(
                    schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
                ),
                "module": module_id,
                "parent": -1,
                "level": 1,
            }
        )
        complex_id += 1
        level_nodes = [root_id]
        for level in range(2, config.num_assembly_levels):
            next_level: list[int] = []
            for parent in level_nodes:
                for _ in range(config.num_assemblies_per_assembly):
                    data.complex_assemblies.append(
                        {
                            "Id": complex_id,
                            "buildDate": rng.randint(
                                schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
                            ),
                            "module": module_id,
                            "parent": parent,
                            "level": level,
                        }
                    )
                    next_level.append(complex_id)
                    complex_id += 1
            level_nodes = next_level
        for parent in level_nodes:
            for _ in range(config.num_assemblies_per_assembly):
                components = [
                    rng.randrange(config.num_composite_parts)
                    for _ in range(config.num_composite_per_assembly)
                ]
                data.base_assemblies.append(
                    {
                        "Id": base_id,
                        "buildDate": rng.randint(
                            schema.MIN_BUILD_DATE, schema.MAX_BUILD_DATE
                        ),
                        "module": module_id,
                        "parent": parent,
                        # OO7 links base assemblies to shared/private
                        # composite parts; we keep the first as a scalar FK
                        # for join workloads.
                        "componentId": components[0],
                    }
                )
                base_id += 1
    return data


#: Extent name -> (object size, indexed attributes).
EXTENT_LAYOUT: dict[str, tuple[int, tuple[str, ...]]] = {
    "AtomicParts": (schema.ATOMIC_PART_BYTES, ("Id", "buildDate")),
    "Connections": (schema.CONNECTION_BYTES, ("fromId",)),
    "CompositeParts": (schema.COMPOSITE_PART_BYTES, ("Id",)),
    "Documents": (schema.DOCUMENT_BYTES, ("Id",)),
    "BaseAssemblies": (schema.BASE_ASSEMBLY_BYTES, ("Id", "componentId")),
    "ComplexAssemblies": (schema.COMPLEX_ASSEMBLY_BYTES, ("Id",)),
    "Modules": (schema.MODULE_BYTES, ("Id",)),
}


def load_database(
    config: OO7Config = schema.TINY,
    seed: int = 7,
    *,
    clustering: str = "scattered",
    extents: tuple[str, ...] | None = None,
    database: ObjectDatabase | None = None,
) -> ObjectDatabase:
    """Generate OO7 data and load it into an object database.

    ``clustering`` applies to every extent (the §5 experiment uses
    ``"scattered"`` — the placement Yao's model assumes); restrict
    ``extents`` to load a subset (the Figure 12 bench only needs
    ``("AtomicParts",)``).
    """
    data = generate(config, seed)
    db = database if database is not None else ObjectDatabase()
    for name, rows in data.extent_rows().items():
        if extents is not None and name not in extents:
            continue
        object_size, indexed = EXTENT_LAYOUT[name]
        db.create_extent(
            name,
            rows,
            object_size=object_size,
            indexed_attributes=indexed,
            clustering=clustering,
        )
    return db
