"""The OO7 benchmark substrate [CDN93] used by the §5 experiments."""

from repro.oo7.generator import OO7Data, generate, load_database
from repro.oo7.schema import CONFIGS, PAPER, SMALL, TINY, OO7Config

__all__ = [
    "CONFIGS",
    "OO7Config",
    "OO7Data",
    "PAPER",
    "SMALL",
    "TINY",
    "generate",
    "load_database",
]
