"""OO7-style query workload [CDN93] expressed against the mediator.

The OO7 benchmark defines a set of query operations; this module adapts
the ones meaningful in a mediator setting (traversals become joins) to
the SQL subset, parameterized by scale configuration and seed so expected
answers are computable from the generated data:

* **Q1** — exact-match lookups of atomic parts by ``Id``;
* **Q2/Q3/Q7** — range selections on ``buildDate`` covering 1 %, 10 %
  and 100 % of the date range (Q7 is the full ordered scan);
* **Q4** — document lookup joined to its composite part;
* **Q5** — base assemblies whose component composite part is newer than
  a date (join + filter);
* **Q8** — atomic parts joined to their composite part's document
  (count).

``expected_*`` helpers compute ground truth directly from
:class:`~repro.oo7.generator.OO7Data`, so integration tests can check the
mediator's answers bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oo7 import schema
from repro.oo7.generator import OO7Data, generate
from repro.oo7.schema import OO7Config


@dataclass(frozen=True)
class WorkloadQuery:
    """One OO7 query: a label, its SQL, and the expected row count."""

    label: str
    sql: str
    expected_rows: int


def _date_threshold(fraction: float) -> int:
    span = schema.MAX_BUILD_DATE - schema.MIN_BUILD_DATE
    return schema.MIN_BUILD_DATE + int(fraction * span)


def build_workload(
    config: OO7Config = schema.TINY,
    seed: int = 7,
    lookups: int = 3,
    rng_seed: int = 99,
) -> list[WorkloadQuery]:
    """The query set with expected answers for ``generate(config, seed)``."""
    data = generate(config, seed)
    rng = random.Random(rng_seed)
    queries: list[WorkloadQuery] = []

    # Q1: exact-match lookups on AtomicParts.Id.
    for index in range(lookups):
        part_id = rng.randrange(config.num_atomic_parts)
        queries.append(
            WorkloadQuery(
                label=f"Q1.{index}",
                sql=f"SELECT * FROM AtomicParts WHERE Id = {part_id}",
                expected_rows=1,
            )
        )

    # Q2/Q3: 1% and 10% buildDate ranges; Q7: the full ordered scan.
    for label, fraction in (("Q2", 0.01), ("Q3", 0.10)):
        threshold = _date_threshold(fraction)
        expected = sum(
            1
            for part in data.atomic_parts
            if schema.MIN_BUILD_DATE <= part["buildDate"] <= threshold
        )
        queries.append(
            WorkloadQuery(
                label=label,
                sql=(
                    "SELECT * FROM AtomicParts WHERE buildDate BETWEEN "
                    f"{schema.MIN_BUILD_DATE} AND {threshold}"
                ),
                expected_rows=expected,
            )
        )
    queries.append(
        WorkloadQuery(
            label="Q7",
            sql="SELECT Id, buildDate FROM AtomicParts ORDER BY buildDate",
            expected_rows=config.num_atomic_parts,
        )
    )

    # Q4: a document and its composite part.
    doc_id = rng.randrange(config.num_composite_parts)
    queries.append(
        WorkloadQuery(
            label="Q4",
            sql=(
                "SELECT * FROM Documents, CompositeParts "
                "WHERE Documents.compPartId = CompositeParts.Id "
                f"AND Documents.Id = {doc_id}"
            ),
            expected_rows=1,
        )
    )

    # Q5: base assemblies whose component part is newer than a date.
    threshold = _date_threshold(0.5)
    build_dates = {c["Id"]: c["buildDate"] for c in data.composite_parts}
    expected = sum(
        1
        for assembly in data.base_assemblies
        if build_dates[assembly["componentId"]] > threshold
    )
    queries.append(
        WorkloadQuery(
            label="Q5",
            sql=(
                "SELECT * FROM BaseAssemblies, CompositeParts "
                "WHERE BaseAssemblies.componentId = CompositeParts.Id "
                f"AND CompositeParts.buildDate > {threshold}"
            ),
            expected_rows=expected,
        )
    )

    # Q8: atomic parts joined to their composite part's document (count).
    queries.append(
        WorkloadQuery(
            label="Q8",
            sql=(
                "SELECT COUNT(*) AS pairs FROM AtomicParts, Documents "
                "WHERE AtomicParts.partOf = Documents.compPartId"
            ),
            expected_rows=1,
        )
    )
    return queries


def expected_q8_pairs(data: OO7Data) -> int:
    """Ground truth for the Q8 count."""
    docs_per_composite: dict[int, int] = {}
    for document in data.documents:
        docs_per_composite[document["compPartId"]] = (
            docs_per_composite.get(document["compPartId"], 0) + 1
        )
    return sum(
        docs_per_composite.get(part["partOf"], 0) for part in data.atomic_parts
    )
