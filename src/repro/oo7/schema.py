"""The OO7 benchmark schema and scale configurations [CDN93].

OO7 models a CAD database: a module is a tree of complex assemblies whose
leaves (base assemblies) reference composite parts; each composite part
owns a document and a graph of atomic parts wired by connections.

The validation experiment of the paper (§5) scans the ``AtomicParts``
extent: "The size of one AtomicPart object is 56 bytes, the collection
cardinality is 70000 and its size is 1000 pages.  The page fill factor is
96 % of 4096 bytes.  The distribution of the Id value is uniform."
:data:`PAPER` encodes exactly that configuration;
:data:`TINY`/:data:`SMALL` give fast variants for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Object sizes in bytes (AtomicPart size is the paper's 56).
ATOMIC_PART_BYTES = 56
CONNECTION_BYTES = 32
COMPOSITE_PART_BYTES = 104
DOCUMENT_BYTES = 2000
BASE_ASSEMBLY_BYTES = 72
COMPLEX_ASSEMBLY_BYTES = 72
MODULE_BYTES = 128

#: The ten part-type strings of the OO7 specification.
PART_TYPES = tuple(f"type{i:03d}" for i in range(10))

#: buildDate ranges (OO7 uses young/old part populations).
MIN_BUILD_DATE = 1000
MAX_BUILD_DATE = 1999


@dataclass(frozen=True)
class OO7Config:
    """Scale parameters of one OO7 database."""

    name: str
    num_modules: int
    num_assembly_levels: int
    num_assemblies_per_assembly: int
    num_composite_per_assembly: int
    num_composite_parts: int
    num_atomic_per_composite: int
    num_connections_per_atomic: int

    @property
    def num_atomic_parts(self) -> int:
        return self.num_composite_parts * self.num_atomic_per_composite

    @property
    def num_base_assemblies(self) -> int:
        return self.num_modules * (
            self.num_assemblies_per_assembly ** (self.num_assembly_levels - 1)
        )

    @property
    def num_complex_assemblies(self) -> int:
        # Internal nodes of the assembly tree (levels 1..L-1).
        per_module = sum(
            self.num_assemblies_per_assembly**level
            for level in range(self.num_assembly_levels - 1)
        )
        return self.num_modules * per_module

    @property
    def num_connections(self) -> int:
        return self.num_atomic_parts * self.num_connections_per_atomic


#: A few hundred objects: unit tests.
TINY = OO7Config(
    name="tiny",
    num_modules=1,
    num_assembly_levels=3,
    num_assemblies_per_assembly=3,
    num_composite_per_assembly=3,
    num_composite_parts=20,
    num_atomic_per_composite=10,
    num_connections_per_atomic=3,
)

#: The OO7 "small" configuration (10 000 atomic parts).
SMALL = OO7Config(
    name="small",
    num_modules=1,
    num_assembly_levels=7,
    num_assemblies_per_assembly=3,
    num_composite_per_assembly=3,
    num_composite_parts=500,
    num_atomic_per_composite=20,
    num_connections_per_atomic=3,
)

#: The §5 experiment: 70 000 AtomicParts of 56 bytes -> 1000 pages at
#: 96 % fill of 4096-byte pages.
PAPER = OO7Config(
    name="paper",
    num_modules=1,
    num_assembly_levels=7,
    num_assemblies_per_assembly=3,
    num_composite_per_assembly=3,
    num_composite_parts=3500,
    num_atomic_per_composite=20,
    num_connections_per_atomic=3,
)

CONFIGS = {config.name: config for config in (TINY, SMALL, PAPER)}
