"""The mediator facade — the component of Figures 1 and 2.

Ties the whole architecture together:

* :meth:`Mediator.register` runs the registration phase for a wrapper
  (schema + statistics + cost rules into catalog/repository/estimator);
* :meth:`Mediator.query` runs the query phase: parse (SQL) → translate →
  optimize (blended cost model, §4) → execute (submits to wrappers,
  composition at the mediator) → answer;
* :meth:`Mediator.explain` shows the chosen plan with per-node costs and
  the provenance of every estimate (which scope/rule produced it);
* with ``record_history=True``, executed subqueries feed the §4.3.1
  query-scope history so identical subqueries are estimated from real
  measurements afterwards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.algebra.logical import PlanNode
from repro.core.estimator import CostEstimator, EstimatorOptions, PlanEstimate
from repro.core.generic import CoefficientSet, standard_repository
from repro.core.history import HistoryStore
from repro.core.scopes import RuleRepository
from repro.mediator.catalog import MediatorCatalog
from repro.mediator.executor import ExecutorOptions, MediatorExecutor
from repro.mediator.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
    OptimizerStats,
)
from repro.mediator.queryspec import QuerySpec, UnionSpec
from repro.mediator.registration import register_wrapper
from repro.mediator.resilience import PartialAnswer
from repro.obs import ObservabilityOptions, QueryTelemetry
from repro.obs.hotpath import NULL_HOTPATH, HotpathProfiler
from repro.obs.trace import NULL_TRACER, Span, SpanTracer
from repro.sources.pages import Row
from repro.wrappers.base import Wrapper


@dataclass
class QueryResult:
    """The answer returned to the client (Step 6) plus diagnostics."""

    rows: list[Row]
    elapsed_ms: float
    time_first_ms: float
    plan: PlanNode
    estimate: PlanEstimate
    optimizer_stats: OptimizerStats = field(default_factory=OptimizerStats)
    sql: str | None = None
    #: Subanswer-cache activity during this query (zero when disabled).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Simulated time concurrent submit waves saved versus sequential
    #: dispatch (zero in the default sequential mode).
    parallel_saved_ms: float = 0.0
    #: The query's span tree (root ``query`` span) when the mediator was
    #: built with tracing enabled; ``None`` otherwise.
    trace: Span | None = None
    #: Degradation report when the query was answered without some of
    #: its sources (``partial`` failure mode): which wrappers and
    #: collections are missing, which union branches were dropped, which
    #: joins were pruned, and whether the answer is a sound lower bound.
    #: ``None`` on a complete answer.
    partial: PartialAnswer | None = None
    #: Per-operator cost attribution (built from the span tree when the
    #: mediator runs with tracing + profiling on); ``None`` otherwise.
    #: Typed loosely to keep the import graph acyclic — always a
    #: :class:`repro.obs.profile.QueryProfile` when set.
    profile: "object | None" = None

    @property
    def count(self) -> int:
        return len(self.rows)

    @property
    def degraded(self) -> bool:
        """True when at least one source failed out of this answer."""
        return self.partial is not None and self.partial.degraded

    @property
    def estimated_ms(self) -> float:
        return self.estimate.total_time


class Mediator:
    """A DISCO-style mediator over registered wrappers."""

    def __init__(
        self,
        estimator_options: EstimatorOptions | None = None,
        optimizer_options: OptimizerOptions | None = None,
        repository: RuleRepository | None = None,
        record_history: bool = False,
        executor_options: ExecutorOptions | None = None,
        observability: ObservabilityOptions | None = None,
    ) -> None:
        self.catalog = MediatorCatalog()
        self.repository = (
            repository if repository is not None else standard_repository()
        )
        self.coefficients = CoefficientSet()
        self.estimator = CostEstimator(
            self.repository,
            self.catalog.statistics,
            options=estimator_options,
            coefficients=self.coefficients,
        )
        # The catalog owns the calibration overlay history; the estimator
        # reads the active version on every wrapper-owned prediction.
        self.estimator.calibration = self.catalog.calibration
        if executor_options is not None and estimator_options is None:
            # Keep what the optimizer believes aligned with how the
            # executor will actually dispatch, unless the caller pinned
            # the estimator's behaviour explicitly.
            self.estimator.options.parallel_submits = (
                executor_options.parallel_submits
            )
            self.estimator.options.max_concurrency = (
                executor_options.max_concurrency
            )
        self.optimizer = Optimizer(self.catalog, self.estimator, optimizer_options)
        self.executor = MediatorExecutor(self.catalog, options=executor_options)
        # Replica plumbing: the optimizer excludes breaker-open members
        # at costing time, and the scheduler ranks failover/hedge
        # candidates with the same cost model the optimizer used.
        self.optimizer.health_view = self.executor.scheduler.open_breaker_wrappers
        self.executor.scheduler.replica_ranker = self.optimizer.rank_replicas
        self.history = HistoryStore(self.repository) if record_history else None
        self.observability = (
            observability if observability is not None else ObservabilityOptions()
        )
        #: The telemetry bundle (tracer + metrics + drift); ``None`` when
        #: observability is off — disabled telemetry costs nothing.
        self.telemetry: QueryTelemetry | None = None
        self._tracer: SpanTracer = NULL_TRACER
        self._hotpath: HotpathProfiler = NULL_HOTPATH
        if self.observability.enabled:
            self.telemetry = QueryTelemetry(
                self.observability, clock=self.executor.clock
            )
            self._tracer = self.telemetry.tracer
            self.estimator.tracer = self._tracer
            self.optimizer.tracer = self._tracer
            self.executor.set_tracer(
                self._tracer, trace_compose=self.observability.trace_compose
            )
            if self.telemetry.hotpath is not None:
                self._hotpath = self.telemetry.hotpath
                self.estimator.hotpath = self._hotpath
                self.optimizer.hotpath = self._hotpath

    # -- registration phase (§2.1) ---------------------------------------------

    def register(self, wrapper: Wrapper) -> int:
        """Register (or re-register) a wrapper; returns its rule count."""
        if self.executor.cache is not None:
            # Re-registration means the source's data or rules changed;
            # memoized subanswers from it are no longer trustworthy.
            self.executor.cache.invalidate_wrapper(wrapper.name)
        if self.telemetry is not None and self.telemetry.drift is not None:
            # Registered sources report drift even before any submit is
            # measured ("no data" beats a silently missing row).
            self.telemetry.drift.expect_wrapper(wrapper.name)
        return register_wrapper(
            wrapper, self.catalog, self.repository, self.estimator
        )

    def register_replica(self, wrapper: Wrapper, of: str) -> int:
        """Register ``wrapper`` as a replica of the already-registered
        source ``of``; returns the replica's rule count.

        The replica must serve (at least) every collection the primary
        serves.  The primary's statistics stay canonical; the replica
        contributes its own cost rules and environment, so the optimizer
        can price the same subquery differently per member.
        """
        if self.executor.cache is not None:
            # A new member changes how submits to this logical source
            # may be served; cached subanswers keyed on the primary stay
            # valid, but be conservative about the new name.
            self.executor.cache.invalidate_wrapper(wrapper.name)
        if self.telemetry is not None and self.telemetry.drift is not None:
            self.telemetry.drift.expect_wrapper(wrapper.name)
        from repro.mediator.registration import register_replica

        return register_replica(
            wrapper, of, self.catalog, self.repository, self.estimator
        )

    def register_partitioned(self, scheme):
        """Register a partition scheme over already-registered shard
        wrappers; returns the aggregated logical statistics (or None)."""
        from repro.mediator.registration import register_partitioned_collection

        return register_partitioned_collection(
            scheme, self.catalog, self.estimator
        )

    # -- calibration (§4.3 feedback loop) ---------------------------------------

    def apply_calibration(self, updates, note: str = "", observations: int = 0):
        """Install a calibration overlay and drop every stale estimate.

        ``updates`` is a ``{CoefficientKey: multiplier}`` dict or a list
        of :class:`~repro.mediator.calibration.CoefficientUpdate`.  The
        catalog-version bump invalidates plan caches; the subplan cache
        holds calibrated values, so it is flushed here too.
        """
        overlay = self.catalog.apply_calibration(
            updates, note=note, observations=observations
        )
        self.estimator.invalidate_cache()
        return overlay

    def rollback_calibration(self, version: int):
        """Re-activate a prior overlay version (0 = seed behaviour)."""
        overlay = self.catalog.rollback_calibration(version)
        self.estimator.invalidate_cache()
        return overlay

    # -- query phase (§2.2) ---------------------------------------------------------

    def parse(self, sql: str) -> QuerySpec | UnionSpec:
        """Parse SQL into the optimizer's query representation."""
        from repro.sqlfe.translator import translate_sql

        with self._hotpath.phase("parse"):
            with self._tracer.span("parse/translate", kind="phase", sql=sql):
                return translate_sql(sql, self.catalog)

    def plan(self, query: "str | QuerySpec | UnionSpec") -> OptimizationResult:
        """Optimize a query without executing it."""
        spec = self.parse(query) if isinstance(query, str) else query
        tracer = self._tracer
        with self._hotpath.phase("optimize"), tracer.span(
            "optimize", kind="phase"
        ) as span:
            optimized = self.optimizer.optimize(spec)
            if tracer.enabled:
                span.set(
                    candidates_considered=optimized.stats.candidates_considered,
                    candidates_pruned=optimized.stats.candidates_pruned,
                    estimated_ms=optimized.estimated_total_ms,
                )
        return optimized

    def query(self, query: "str | QuerySpec | UnionSpec") -> QueryResult:
        """Run a query end to end and return rows plus diagnostics."""
        sql = query if isinstance(query, str) else None
        tracer = self._tracer
        with tracer.span("query", kind="query", sql=sql) as root:
            optimized = self.plan(query)
            with self._hotpath.phase("execute"), tracer.span(
                "execute", kind="phase"
            ) as execute_span:
                execution = self.executor.execute(optimized.plan)
                if tracer.enabled:
                    execute_span.set(
                        rows=len(execution.rows),
                        elapsed_ms=execution.total_time_ms,
                        cache_hits=execution.cache_hits,
                        cache_misses=execution.cache_misses,
                        parallel_saved_ms=execution.parallel_saved_ms,
                    )
                    if execution.degraded:
                        assert execution.partial is not None
                        execute_span.set(
                            degraded=True,
                            missing_wrappers=execution.partial.missing_wrappers,
                        )
        if self.history is not None:
            self.history.record_plan(optimized.plan, execution, self.catalog)
        result = QueryResult(
            rows=execution.rows,
            elapsed_ms=execution.total_time_ms,
            time_first_ms=execution.time_first_ms,
            plan=optimized.plan,
            estimate=optimized.estimate,
            optimizer_stats=optimized.stats,
            sql=sql,
            cache_hits=execution.cache_hits,
            cache_misses=execution.cache_misses,
            parallel_saved_ms=execution.parallel_saved_ms,
            trace=root if tracer.enabled else None,
            partial=execution.partial,
        )
        if self.telemetry is not None:
            self.telemetry.record_query(
                result, execution, breakers=self.executor.scheduler.breakers
            )
        return result

    def execute_plan(self, plan: PlanNode) -> QueryResult:
        """Execute a hand-built plan, bypassing the optimizer."""
        tracer = self._tracer
        with tracer.span("query", kind="query", entry="execute_plan") as root:
            estimate = self.estimator.estimate(plan)
            with self._hotpath.phase("execute"), tracer.span(
                "execute", kind="phase"
            ):
                execution = self.executor.execute(plan)
        if self.history is not None:
            self.history.record_plan(plan, execution, self.catalog)
        result = QueryResult(
            rows=execution.rows,
            elapsed_ms=execution.total_time_ms,
            time_first_ms=execution.time_first_ms,
            plan=plan,
            estimate=estimate,
            sql=None,
            cache_hits=execution.cache_hits,
            cache_misses=execution.cache_misses,
            parallel_saved_ms=execution.parallel_saved_ms,
            trace=root if tracer.enabled else None,
            partial=execution.partial,
        )
        if self.telemetry is not None:
            self.telemetry.record_query(
                result, execution, breakers=self.executor.scheduler.breakers
            )
        return result

    def explain(
        self, query: "str | QuerySpec | UnionSpec", format: str = "text"
    ) -> str:
        """The chosen plan with costs and rule provenance per node.

        ``format="text"`` (default) renders the indented human-readable
        plan; ``format="json"`` returns a machine-readable document with
        the same information (per-node values and provenance).  The
        subanswer-cache line reports *lifetime* executor counters — it is
        labelled as such because `explain` itself executes nothing.
        """
        if format not in ("text", "json"):
            raise ValueError(f"unknown explain format {format!r}")
        tracer = self._tracer
        roots_before = len(tracer.roots) if tracer.enabled else 0
        optimized = self.plan(query)
        open_breakers = self.executor.scheduler.open_breaker_wrappers()
        if format == "json":
            payload: dict = {
                "estimated_total_ms": optimized.estimated_total_ms,
                "candidates_considered": optimized.stats.candidates_considered,
                "candidates_pruned": optimized.stats.candidates_pruned,
            }
            if self.executor.cache is not None:
                stats = self.executor.cache.stats
                payload["subanswer_cache_lifetime"] = {
                    "hits": stats.hits,
                    "misses": stats.misses,
                }
            if self.executor.options.resilience is not None:
                payload["degraded"] = bool(open_breakers)
                payload["degraded_wrappers"] = open_breakers
            payload.update(optimized.estimate.to_dict())
            return json.dumps(payload, indent=2, sort_keys=True)
        header = (
            f"estimated TotalTime: {optimized.estimated_total_ms:.1f} ms "
            f"({optimized.stats.candidates_considered} candidates, "
            f"{optimized.stats.candidates_pruned} pruned)"
        )
        if self.executor.cache is not None:
            # Lifetime counters of this executor's cache — explain does
            # not execute, so there is no per-run activity to report.
            header += f"\nsubanswer cache (lifetime): {self.executor.cache.stats}"
        if open_breakers:
            # Degraded mode: these wrappers' breakers are open (or half
            # open) right now — submits to them will fast-fail or probe.
            header += (
                "\nDEGRADED: circuit breakers not closed for wrappers "
                + ", ".join(open_breakers)
            )
        text = header + "\n" + optimized.estimate.explain()
        if tracer.enabled and len(tracer.roots) > roots_before:
            rendered = "\n".join(
                span.render() for span in tracer.roots[roots_before:]
            )
            text += "\n\noptimization trace:\n" + rendered
        return text
