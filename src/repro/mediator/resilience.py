"""Fault-tolerant dispatch policies and partial-answer semantics.

A production federation serving heavy traffic cannot fail a whole query
because one of its sources is slow or down — FedQPL models federation
members as independently-failing participants, and the XLive mediator
line makes per-source availability a first-class concern.  This module
holds everything the scheduler and executor need to degrade gracefully:

* :class:`RetryPolicy` — bounded attempts with exponential backoff (and
  optional deterministic jitter) charged on the *simulated* clock, plus a
  per-submit deadline that cancels a wrapper wait mid-flight;
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — the classic
  closed → open → half-open state machine per wrapper, driven purely by
  the mediator's simulated clock, so a dead source stops consuming retry
  budget across a wave;
* :class:`ResilienceOptions` — the executor-level bundle (retry policy,
  breaker policy, ``strict`` vs ``partial`` failure mode);
* :class:`SubmitFailure` / :class:`PartialAnswer` — the structured
  degradation report attached to a query answered without all of its
  sources, including the documented soundness rule (see
  ``docs/resilience.md``):

  **Partial-answer reduction rule.**  A subtree is *missing* when every
  path to rows below it crosses a failed submit: a failed ``Submit`` is
  missing; a ``Union`` is missing only if both branches are; a ``Join``
  or ``BindJoin`` is missing if either side is (inner-join semantics);
  every other operator is missing iff its child is.  Missing union
  branches are dropped, joins over a missing side are pruned to zero
  rows.  Because all of those operators are monotone, every surviving
  row is a true answer row — the partial answer is a **sound lower
  bound** of the complete answer — *unless* an ``Aggregate`` sits above
  a failed submit, in which case aggregate values may be computed over
  partial groups and :attr:`PartialAnswer.sound_lower_bound` is False.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.algebra.logical import (
    Aggregate,
    BindJoin,
    Join,
    Scatter,
    PlanNode,
    Submit,
    Union,
)

#: Circuit-breaker states (plain strings: cheap, printable, JSON-ready).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff on the simulated clock.

    ``max_attempts`` counts *attempts*, not retries: 1 means fail on the
    first error, 3 means up to two retries.  ``deadline_ms`` caps the
    total simulated time one submit may spend *waiting* (wrapper waits,
    failure latencies, backoff sleeps; the serialized request/response
    messages are excluded — they share the mediator's network interface).
    A wrapper wait that would overrun the deadline is cancelled
    mid-flight: only the remaining budget is charged and the rows are
    discarded.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 100.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 5_000.0
    #: Symmetric jitter as a fraction of the computed delay (0 = none);
    #: drawn from the scheduler's seeded RNG, so runs stay reproducible.
    jitter_ratio: float = 0.0
    #: Per-submit wait budget in simulated ms; ``None`` = no deadline.
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter_ratio <= 1.0:
            raise ValueError(
                f"jitter_ratio must be in [0, 1], got {self.jitter_ratio}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")

    def backoff_ms(self, failed_attempts: int, rng: random.Random) -> float:
        """Backoff before the attempt after ``failed_attempts`` failures."""
        exponent = max(0, failed_attempts - 1)
        delay = min(
            self.backoff_max_ms,
            self.backoff_base_ms * self.backoff_multiplier**exponent,
        )
        if self.jitter_ratio > 0.0:
            delay *= 1.0 + self.jitter_ratio * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass
class BreakerPolicy:
    """Trip/cooldown knobs of the per-wrapper circuit breakers."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 3
    #: Simulated ms an open breaker blocks before allowing one half-open
    #: probe.
    cooldown_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_ms < 0:
            raise ValueError(f"cooldown_ms must be >= 0, got {self.cooldown_ms}")


class CircuitBreaker:
    """Closed/open/half-open breaker for one wrapper, on simulated time.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — requests fast-fail without consuming retry budget until
      ``cooldown_ms`` of simulated time has passed, then the next
      :meth:`allow` transitions to half-open.
    * **half-open** — exactly *one* in-flight probe flows (concurrent
      requests in the same wave fast-fail while the probe is out);
      success closes the breaker, failure re-opens it with a fresh
      cooldown.

    State transitions are lock-guarded: on the real-time backend,
    branches of one wave record successes and failures for the same
    wrapper from concurrent pool threads, and the single-probe guarantee
    of the half-open state only holds if the check-and-set in
    :meth:`allow` is atomic.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: float | None = None
        #: Lifetime closed→open (and half-open→open) transitions.
        self.trips = 0
        #: True while the single half-open probe is in flight.
        self._probe_in_flight = False
        self._lock = threading.Lock()

    def allow(self, now_ms: float) -> bool:
        """May a request flow at simulated time ``now_ms``?"""
        with self._lock:
            if self.state == OPEN:
                assert self.opened_at_ms is not None
                if now_ms - self.opened_at_ms >= self.policy.cooldown_ms:
                    self.state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            if self.state == HALF_OPEN:
                # Only one probe tests the source: siblings dispatched while
                # it is out (e.g. the rest of a wave) fast-fail.
                if self._probe_in_flight:
                    return False
                self._probe_in_flight = True
                return True
            return True  # closed

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = CLOSED
            self.opened_at_ms = None
            self._probe_in_flight = False

    def record_failure(self, now_ms: float) -> bool:
        """Count a failure; returns True when this one tripped the
        breaker open (from closed *or* from a failed half-open probe)."""
        with self._lock:
            self.consecutive_failures += 1
            if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.policy.failure_threshold
            ):
                # A failed half-open probe re-opens with a *fresh* cooldown
                # (opened_at_ms restarts at now_ms).
                self.state = OPEN
                self.opened_at_ms = now_ms
                self.trips += 1
                self._probe_in_flight = False
                return True
            self._probe_in_flight = False
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures}, trips={self.trips})"
        )


@dataclass
class HedgePolicy:
    """Opt-in hedged submits against replicated sources.

    When a submit's wrapper wait exceeds the hedge delay and the wrapper
    has a healthy replica, the scheduler launches one backup submit at
    the next-cheapest replica; the first result wins and the loser is
    cancelled — its unconsumed wait is never charged to the mediator
    clock (the work happened on a parallel timeline).

    ``mode="fixed"`` hedges after ``delay_ms``.  ``mode="percentile"``
    hedges after the ``percentile``-th latency of the wrapper's recent
    submits (a per-wrapper history window the scheduler maintains),
    falling back to ``delay_ms`` until ``min_samples`` observations have
    accumulated.
    """

    delay_ms: float = 500.0
    mode: str = "fixed"
    #: Latency percentile (0..100) used in ``percentile`` mode.
    percentile: float = 95.0
    #: Observations needed before the percentile estimate is trusted.
    min_samples: int = 8
    #: History window size per wrapper.
    window: int = 128

    def __post_init__(self) -> None:
        if self.mode not in ("fixed", "percentile"):
            raise ValueError(
                f"hedge mode must be 'fixed' or 'percentile', got {self.mode!r}"
            )
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.window < self.min_samples:
            raise ValueError("window must be >= min_samples")

    def threshold_ms(self, history: "list[float]") -> float:
        """The hedge trigger given a wrapper's recent latencies."""
        if self.mode == "fixed" or len(history) < self.min_samples:
            return self.delay_ms
        ordered = sorted(history)
        rank = max(
            0, min(len(ordered) - 1, int(len(ordered) * self.percentile / 100.0))
        )
        return ordered[rank]


#: Failure modes of the executor when a submit exhausts its retries.
STRICT = "strict"
PARTIAL = "partial"


@dataclass
class ResilienceOptions:
    """The executor-level fault-tolerance bundle.

    ``None`` (the executor default) disables the whole layer: dispatch
    follows the seed code path bit for bit.  With options present but no
    faults occurring, clock totals and submit logs are still identical to
    the seed path — the policies only act on failures.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: ``None`` disables circuit breakers (retries still apply).
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    #: ``strict`` — a failed submit raises :class:`~repro.errors.
    #: SubmitFailedError`; ``partial`` — the query completes with the
    #: surviving subtrees and a :class:`PartialAnswer` report.
    mode: str = STRICT
    #: Seed of the scheduler's jitter RNG.
    seed: int = 0
    #: ``None`` disables hedged submits; only effective when the catalog
    #: has replica sets (hedging needs a second source to race).
    hedge: HedgePolicy | None = None

    def __post_init__(self) -> None:
        if self.mode not in (STRICT, PARTIAL):
            raise ValueError(
                f"mode must be {STRICT!r} or {PARTIAL!r}, got {self.mode!r}"
            )


@dataclass
class SubmitFailure:
    """One submit that exhausted its retry budget (or was fast-failed)."""

    wrapper: str
    subquery: str
    #: ``node_id`` of the plan's Submit node; bind-join probe submits are
    #: synthesized at run time, so probes carry the BindJoin's id instead.
    node_id: int
    collection: str | None
    #: ``unavailable`` | ``transient`` | ``timeout`` | ``circuit_open``
    reason: str
    attempts: int
    #: True for a bind-join probe batch (the inner side of a dependent
    #: join, fetched per key batch).
    bindjoin_probe: bool = False
    #: Replica members tried (in dispatch order) before the branch was
    #: dropped; empty for unreplicated sources.
    replicas_tried: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "wrapper": self.wrapper,
            "subquery": self.subquery,
            "node_id": self.node_id,
            "collection": self.collection,
            "reason": self.reason,
            "attempts": self.attempts,
            "bindjoin_probe": self.bindjoin_probe,
            "replicas_tried": list(self.replicas_tried),
        }


@dataclass
class PartialAnswer:
    """What is missing from a degraded (``partial``-mode) answer."""

    failures: list[SubmitFailure] = field(default_factory=list)
    missing_wrappers: list[str] = field(default_factory=list)
    missing_collections: list[str] = field(default_factory=list)
    #: Union branches whose subtree was missing and therefore dropped.
    dropped_union_branches: int = 0
    #: Joins (and bind joins) reduced to zero rows by a missing side.
    pruned_joins: int = 0
    #: True when every operator above every failed submit is monotone:
    #: each returned row is a true answer row and the complete answer is
    #: a superset.  False when an Aggregate sits above a failure.
    sound_lower_bound: bool = True

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def to_dict(self) -> dict[str, Any]:
        return {
            "failures": [f.to_dict() for f in self.failures],
            "missing_wrappers": list(self.missing_wrappers),
            "missing_collections": list(self.missing_collections),
            "dropped_union_branches": self.dropped_union_branches,
            "pruned_joins": self.pruned_joins,
            "sound_lower_bound": self.sound_lower_bound,
        }

    def describe(self) -> str:
        bound = (
            "sound lower bound"
            if self.sound_lower_bound
            else "NOT a sound lower bound (aggregate over missing data)"
        )
        return (
            f"partial answer: wrappers missing {self.missing_wrappers}, "
            f"collections missing {self.missing_collections}, "
            f"{self.dropped_union_branches} union branch(es) dropped, "
            f"{self.pruned_joins} join(s) pruned; {bound}"
        )


def _subtree_missing(node: PlanNode, failed_ids: set[int]) -> bool:
    """The reduction rule: does this subtree contribute zero rows?"""
    if isinstance(node, Submit):
        return node.node_id in failed_ids
    if isinstance(node, Union):
        return _subtree_missing(node.left, failed_ids) and _subtree_missing(
            node.right, failed_ids
        )
    if isinstance(node, Join):
        return _subtree_missing(node.left, failed_ids) or _subtree_missing(
            node.right, failed_ids
        )
    if isinstance(node, BindJoin):
        # The inner side is fetched per probe at run time; the plan-level
        # subtree is missing when the outer side is.
        return _subtree_missing(node.outer, failed_ids)
    if isinstance(node, Scatter):
        # An N-ary union over shards: missing only if every shard is.
        return all(
            _subtree_missing(branch, failed_ids) for branch in node.branches
        )
    children = node.children
    if not children:
        return False
    return all(_subtree_missing(child, failed_ids) for child in children)


def build_partial_answer(
    plan: PlanNode, failures: list[SubmitFailure]
) -> PartialAnswer:
    """Fold the recorded failures into the structured degradation report."""
    failed_ids = {f.node_id for f in failures if not f.bindjoin_probe}
    probe_join_ids = {f.node_id for f in failures if f.bindjoin_probe}
    missing_wrappers = sorted({f.wrapper for f in failures})
    missing_collections = sorted(
        {f.collection for f in failures if f.collection is not None}
    )
    dropped_union_branches = 0
    pruned_joins = len(probe_join_ids)
    sound = True
    for node in plan.walk():
        if isinstance(node, Union):
            for side in (node.left, node.right):
                if _subtree_missing(side, failed_ids):
                    dropped_union_branches += 1
        elif isinstance(node, Join):
            left = _subtree_missing(node.left, failed_ids)
            right = _subtree_missing(node.right, failed_ids)
            if left != right:  # one side missing -> join pruned to zero
                pruned_joins += 1
        elif isinstance(node, BindJoin):
            if _subtree_missing(node.outer, failed_ids):
                pruned_joins += 1
        elif isinstance(node, Scatter):
            # Each failed shard is one dropped branch of the N-ary
            # gather union — the answer is missing that shard's rows.
            for branch in node.branches:
                if _subtree_missing(branch, failed_ids):
                    dropped_union_branches += 1
        elif isinstance(node, Aggregate):
            subtree_ids = {
                child.node_id
                for child in node.walk()
                if isinstance(child, Submit)
            }
            if subtree_ids & failed_ids or (
                probe_join_ids
                & {c.node_id for c in node.walk() if isinstance(c, BindJoin)}
            ):
                sound = False
    return PartialAnswer(
        failures=list(failures),
        missing_wrappers=missing_wrappers,
        missing_collections=missing_collections,
        dropped_union_branches=dropped_union_branches,
        pruned_joins=pruned_joins,
        sound_lower_bound=sound,
    )


@dataclass
class ResilienceStats:
    """Lifetime fault-handling counters of one scheduler, per wrapper.

    The executor snapshots before/after each execution (like the cache
    counters) and attaches the delta to ``ExecutionResult.resilience``;
    the telemetry layer turns the delta into Prometheus counters.
    """

    retries: dict[str, int] = field(default_factory=dict)
    timeouts: dict[str, int] = field(default_factory=dict)
    #: Failed attempts per wrapper (transient + unavailable).
    attempt_errors: dict[str, int] = field(default_factory=dict)
    breaker_trips: dict[str, int] = field(default_factory=dict)
    breaker_fast_fails: dict[str, int] = field(default_factory=dict)
    failed_submits: dict[str, int] = field(default_factory=dict)
    backoff_ms: float = 0.0
    cancelled_wait_ms: float = 0.0

    _COUNTER_FIELDS = (
        "retries",
        "timeouts",
        "attempt_errors",
        "breaker_trips",
        "breaker_fast_fails",
        "failed_submits",
    )

    @staticmethod
    def _inc(counter: dict[str, int], wrapper: str, amount: int = 1) -> None:
        counter[wrapper] = counter.get(wrapper, 0) + amount

    def copy(self) -> "ResilienceStats":
        return replace(
            self,
            **{name: dict(getattr(self, name)) for name in self._COUNTER_FIELDS},
        )

    def minus(self, before: "ResilienceStats") -> "ResilienceStats":
        """Per-execution delta: ``self`` (after) minus ``before``."""
        delta = ResilienceStats(
            backoff_ms=self.backoff_ms - before.backoff_ms,
            cancelled_wait_ms=self.cancelled_wait_ms - before.cancelled_wait_ms,
        )
        for name in self._COUNTER_FIELDS:
            after_counter: dict[str, int] = getattr(self, name)
            before_counter: dict[str, int] = getattr(before, name)
            out: dict[str, int] = getattr(delta, name)
            for wrapper, value in after_counter.items():
                diff = value - before_counter.get(wrapper, 0)
                if diff:
                    out[wrapper] = diff
        return delta

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts.values())

    @property
    def total_breaker_trips(self) -> int:
        return sum(self.breaker_trips.values())

    @property
    def total_failed_submits(self) -> int:
        return sum(self.failed_submits.values())

    @property
    def empty(self) -> bool:
        return (
            not any(getattr(self, name) for name in self._COUNTER_FIELDS)
            and self.backoff_ms == 0.0
            and self.cancelled_wait_ms == 0.0
        )


@dataclass
class ReplicaStats:
    """Lifetime replica-dispatch counters of one scheduler, per wrapper.

    Same snapshot/delta protocol as :class:`ResilienceStats`; only
    attached to results when the catalog actually has replica sets.
    """

    #: Submits served by each wrapper *as the optimizer's replica
    #: choice* (counted only for replicated sources).
    selected: dict[str, int] = field(default_factory=dict)
    #: Successful mid-query failovers, keyed by the replica that rescued
    #: the submit.
    failovers: dict[str, int] = field(default_factory=dict)
    #: Hedged backups launched, keyed by the backup wrapper.
    hedges_launched: dict[str, int] = field(default_factory=dict)
    #: Hedged backups that beat the primary, keyed by the backup wrapper.
    hedges_won: dict[str, int] = field(default_factory=dict)
    #: Simulated ms of loser work cancelled (never charged to the
    #: mediator clock — it happened on the losing parallel timeline).
    hedge_cancelled_ms: float = 0.0

    _COUNTER_FIELDS = (
        "selected",
        "failovers",
        "hedges_launched",
        "hedges_won",
    )

    _inc = staticmethod(ResilienceStats._inc)

    def copy(self) -> "ReplicaStats":
        return replace(
            self,
            **{name: dict(getattr(self, name)) for name in self._COUNTER_FIELDS},
        )

    def minus(self, before: "ReplicaStats") -> "ReplicaStats":
        """Per-execution delta: ``self`` (after) minus ``before``."""
        delta = ReplicaStats(
            hedge_cancelled_ms=self.hedge_cancelled_ms
            - before.hedge_cancelled_ms,
        )
        for name in self._COUNTER_FIELDS:
            after_counter: dict[str, int] = getattr(self, name)
            before_counter: dict[str, int] = getattr(before, name)
            out: dict[str, int] = getattr(delta, name)
            for wrapper, value in after_counter.items():
                diff = value - before_counter.get(wrapper, 0)
                if diff:
                    out[wrapper] = diff
        return delta

    @property
    def total_failovers(self) -> int:
        return sum(self.failovers.values())

    @property
    def total_hedges_launched(self) -> int:
        return sum(self.hedges_launched.values())

    @property
    def total_hedges_won(self) -> int:
        return sum(self.hedges_won.values())

    @property
    def empty(self) -> bool:
        return (
            not any(getattr(self, name) for name in self._COUNTER_FIELDS)
            and self.hedge_cancelled_ms == 0.0
        )


__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "HedgePolicy",
    "OPEN",
    "PARTIAL",
    "PartialAnswer",
    "ReplicaStats",
    "ResilienceOptions",
    "ResilienceStats",
    "RetryPolicy",
    "STRICT",
    "SubmitFailure",
    "build_partial_answer",
]
