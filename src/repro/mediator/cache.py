"""Subanswer memoization for wrapper subqueries.

Federated engines win by *reusing* work across subqueries (Odyssey-style
answer reuse): two Submit nodes with the same structural fingerprint
(:func:`repro.core.history.plan_fingerprint`) sent to the same wrapper
return the same rows, so the second dispatch can be answered from memory
at zero wrapper and communication cost.  The cache is keyed by
``(wrapper, fingerprint)`` — the same identity the §4.3.1 query-scope
history uses — and persists across queries within one executor, so
repeated federated queries stop re-shipping identical subanswers.

Hits are *not* re-recorded in the submit log: history already holds the
measured cost of the execution that populated the entry, and a zero-time
hit would corrupt those measurements.

Fault-tolerance contract (see ``docs/resilience.md``): only *complete,
successful* subanswers may enter the cache — a timed-out, transiently
failed, or mid-answer-truncated attempt must never be stored (the
scheduler only calls :meth:`SubanswerCache.store` on success, and
:meth:`store` refuses ``faulted=True`` as defense in depth).  Serving a
hit, on the other hand, deliberately bypasses the circuit breaker:
memoized rows came from a past healthy execution, and answering from
memory while the source is down is exactly the degraded-mode win.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.algebra.logical import PlanNode
from repro.core.history import plan_fingerprint
from repro.sources.pages import Row


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced in ``QueryResult`` and ``explain``."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses"


@dataclass
class CacheEntry:
    """One memoized subanswer."""

    rows: list[Row]
    #: Wrapper response time of the execution that filled the entry —
    #: kept for diagnostics; a hit charges none of it.
    wrapper_time_ms: float = 0.0
    uses: int = 0


class SubanswerCache:
    """Memoizes wrapper subanswers by plan fingerprint.

    ``max_entries`` bounds memory; insertion beyond the bound evicts the
    oldest entry (FIFO — deterministic, no clock dependence).
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Per-wrapper hit/miss breakdown (observability: the metrics
        #: registry exports cache behaviour per source, not just globally).
        self.stats_by_wrapper: dict[str, CacheStats] = {}
        self._entries: dict[tuple[str, str], CacheEntry] = {}
        #: One cache may be shared by every query task of the serving
        #: layer; the lock keeps entry/stat mutation safe under
        #: interleaved multi-query access (the fair-share scheduler's
        #: strict handoff already serializes tasks, so the lock is
        #: uncontended there — it protects direct multi-threaded use).
        self._lock = threading.Lock()

    def _wrapper_stats(self, wrapper: str) -> CacheStats:
        stats = self.stats_by_wrapper.get(wrapper)
        if stats is None:
            stats = self.stats_by_wrapper[wrapper] = CacheStats()
        return stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_for(wrapper: str, subplan: PlanNode) -> tuple[str, str]:
        return (wrapper, plan_fingerprint(subplan))

    def lookup(self, wrapper: str, subplan: PlanNode) -> CacheEntry | None:
        """Return the entry for a subquery, counting a hit or miss."""
        key = self.key_for(wrapper, subplan)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._wrapper_stats(wrapper).misses += 1
                return None
            self.stats.hits += 1
            self._wrapper_stats(wrapper).hits += 1
            entry.uses += 1
            return entry

    def store(
        self,
        wrapper: str,
        subplan: PlanNode,
        rows: list[Row],
        wrapper_time_ms: float = 0.0,
        faulted: bool = False,
    ) -> CacheEntry:
        if faulted:
            # Defense in depth: rows from a timed-out or failed attempt
            # are an unusable prefix and must never be memoized.
            raise ValueError(
                "refusing to cache a subanswer from a faulted attempt "
                f"(wrapper {wrapper!r})"
            )
        key = self.key_for(wrapper, subplan)
        entry = CacheEntry(rows=list(rows), wrapper_time_ms=wrapper_time_ms)
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = entry
        return entry

    def invalidate_wrapper(self, wrapper: str) -> int:
        """Drop every entry of one wrapper (re-registration changes data)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == wrapper]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubanswerCache({len(self)} entries, {self.stats})"
