"""Online cost recalibration — closing the paper's §4.3 feedback loop.

The drift tracker (:mod:`repro.obs.accuracy`) measures how far every
cost-rule prediction lands from the executed truth.  This module *acts*
on those measurements: a :class:`Calibrator` re-fits per-wrapper
multiplicative corrections from drift aggregates and installs them as a
**versioned calibration overlay** on the catalog.  The estimator then
multiplies every wrapper-owned prediction by the active coefficient, so
the very next plan is costed with the corrected model — no wrapper
re-registration, no restart.

Design points, in the order they matter:

* **Keys.** A coefficient is addressed by
  :class:`CoefficientKey(wrapper, scope, variable) <CoefficientKey>`.
  ``wrapper`` is the *owning source of the plan node* (who actually ran
  the work), not the source of the rule that priced it — a generic
  default-scope rule (``__mediator__``) prices every wrapper, yet each
  wrapper drifts independently.  ``scope=None`` is a wildcard matching
  any rule scope at that wrapper; lookups try the exact scope first.

* **Fit math (log space).** The drift tracker folds
  ``log(actual / estimate)`` per observation.  The geometric-mean ratio
  ``r = exp(sum_log_ratio / n)`` of a window measures the *residual*
  drift under the currently-active multiplier ``m`` (estimates already
  include it), so the true correction is ``m·r`` and the smoothed update
  is ``m·r^alpha`` — exponential smoothing with factor ``alpha``.

* **Guardrails.** No key is fitted below ``min_samples`` observations;
  a single update never moves a coefficient by more than ``max_step``
  in either direction; every coefficient is clamped to
  ``[clamp_min, clamp_max]``; sub-``min_change`` proposals are dropped
  as no-ops.  Together these give the properties the guardrail test
  battery asserts: updates stay in range, steps stay bounded, and on
  stationary drift the residual ``|log(R/m)|`` contracts monotonically.

* **Versioning.** :class:`CalibrationState` is an append-only list of
  overlays (version 0 is the identity) plus an ``active_version``
  pointer.  Applying a fit appends a new overlay built on top of the
  active one; rollback just moves the pointer, preserving history so a
  rollback can itself be rolled forward.  The catalog bumps its global
  version on every apply/rollback, which invalidates the plan cache's
  version-guarded entries for free.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.core.scopes import MEDIATOR_SOURCE

#: Serialized wildcard marker for ``scope=None`` keys.
_WILDCARD = "*"


@dataclass(frozen=True)
class CoefficientKey:
    """Address of one calibrated coefficient.

    ``scope=None`` is a wildcard: the multiplier applies to every rule
    scope at that wrapper (for that variable) unless a more specific
    exact-scope key exists in the same overlay.
    """

    wrapper: str
    scope: str | None
    variable: str

    def as_string(self) -> str:
        return f"{self.wrapper}|{self.scope or _WILDCARD}|{self.variable}"

    @classmethod
    def from_string(cls, text: str) -> "CoefficientKey":
        parts = text.split("|")
        if len(parts) != 3:
            raise ValueError(f"malformed coefficient key: {text!r}")
        wrapper, scope, variable = parts
        return cls(
            wrapper=wrapper,
            scope=None if scope == _WILDCARD else scope,
            variable=variable,
        )


@dataclass(frozen=True)
class CalibrationPolicy:
    """Guardrails for the fitter.  Every update obeys all of them."""

    #: Minimum pooled observations before a key may be fitted at all.
    min_samples: int = 8
    #: Exponential-smoothing factor: 1.0 jumps straight to the measured
    #: ratio, 0.0 never moves.
    alpha: float = 0.5
    #: Bound on one update: ``new in [old / max_step, old * max_step]``.
    max_step: float = 2.0
    #: Hard range every coefficient is clamped into.
    clamp_min: float = 0.1
    clamp_max: float = 10.0
    #: Relative change below which a proposal is dropped as a no-op
    #: (avoids churning catalog versions on noise).
    min_change: float = 1e-3
    #: Fit one coefficient per (wrapper, scope) instead of pooling all
    #: scopes of a wrapper into one wildcard coefficient.
    per_scope: bool = False
    #: Variables the fitter is allowed to touch.
    variables: tuple[str, ...] = ("TotalTime", "CountObject")

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.max_step <= 1.0:
            raise ValueError("max_step must be > 1")
        if not 0.0 < self.clamp_min <= 1.0 <= self.clamp_max:
            raise ValueError("clamp range must straddle 1.0")
        if self.min_change < 0.0:
            raise ValueError("min_change must be >= 0")


@dataclass(frozen=True)
class CoefficientUpdate:
    """One fitted change, with enough context to audit it."""

    key: CoefficientKey
    previous: float
    proposed: float
    #: Geometric-mean measured ratio actual/estimate over the window
    #: (residual drift under ``previous``).
    measured_ratio: float
    samples: int

    @property
    def step_ratio(self) -> float:
        return self.proposed / self.previous


@dataclass
class CalibrationFit:
    """Outcome of one fit pass over a drift window."""

    updates: list[CoefficientUpdate] = field(default_factory=list)
    #: Keys seen in the window but left alone, with the reason.
    skipped: dict[str, str] = field(default_factory=dict)
    #: Pooled observations that informed the fit (fitted keys only).
    observations: int = 0
    #: Mean q-error of the window across all considered keys — the
    #: "how wrong were we" gauge the service exports.
    window_mean_q: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(self.updates)


@dataclass(frozen=True)
class CalibrationOverlay:
    """One immutable version of the coefficient set."""

    version: int
    multipliers: dict[CoefficientKey, float] = field(default_factory=dict)
    note: str = ""
    #: Observations behind the fit that produced this version.
    fitted_observations: int = 0

    def multiplier_for(
        self, wrapper: str, scope: str | None, variable: str
    ) -> float:
        """Exact-scope match first, wildcard second, identity last."""
        if scope is not None:
            exact = self.multipliers.get(CoefficientKey(wrapper, scope, variable))
            if exact is not None:
                return exact
        wildcard = self.multipliers.get(CoefficientKey(wrapper, None, variable))
        return wildcard if wildcard is not None else 1.0

    @property
    def is_identity(self) -> bool:
        return all(m == 1.0 for m in self.multipliers.values())

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "note": self.note,
            "fitted_observations": self.fitted_observations,
            "multipliers": {
                key.as_string(): value
                for key, value in sorted(
                    self.multipliers.items(), key=lambda kv: kv[0].as_string()
                )
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationOverlay":
        return cls(
            version=int(data["version"]),
            note=str(data.get("note", "")),
            fitted_observations=int(data.get("fitted_observations", 0)),
            multipliers={
                CoefficientKey.from_string(text): float(value)
                for text, value in data.get("multipliers", {}).items()
            },
        )


class CalibrationState:
    """Append-only overlay history with an active-version pointer.

    Version 0 is always the identity overlay (no multipliers); it is the
    rollback target that restores seed behaviour exactly.
    """

    def __init__(self) -> None:
        self.versions: list[CalibrationOverlay] = [
            CalibrationOverlay(version=0, note="identity")
        ]
        self.active_version = 0

    # -- reading ---------------------------------------------------------------

    @property
    def active(self) -> CalibrationOverlay:
        return self.versions[self.active_version]

    @property
    def latest_version(self) -> int:
        return len(self.versions) - 1

    def multiplier_for(
        self, wrapper: str, scope: str | None, variable: str
    ) -> float:
        return self.active.multiplier_for(wrapper, scope, variable)

    @property
    def is_identity(self) -> bool:
        return self.active.is_identity

    def __len__(self) -> int:
        return len(self.versions)

    # -- mutation --------------------------------------------------------------

    def apply(
        self,
        updates: dict[CoefficientKey, float] | list[CoefficientUpdate],
        note: str = "",
        observations: int = 0,
    ) -> CalibrationOverlay:
        """Append a new overlay: active coefficients + the updates.

        Returns the new overlay, which becomes active.
        """
        if not isinstance(updates, dict):
            updates = {u.key: u.proposed for u in updates}
        merged = dict(self.active.multipliers)
        merged.update(updates)
        overlay = CalibrationOverlay(
            version=len(self.versions),
            multipliers=merged,
            note=note,
            fitted_observations=observations,
        )
        self.versions.append(overlay)
        self.active_version = overlay.version
        return overlay

    def rollback(self, version: int) -> CalibrationOverlay:
        """Point the active overlay at any recorded version.

        History is preserved — a rollback can be rolled forward again.
        """
        if not 0 <= version < len(self.versions):
            raise ValueError(
                f"unknown calibration version {version} "
                f"(have 0..{self.latest_version})"
            )
        self.active_version = version
        return self.active

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "active_version": self.active_version,
            "versions": [overlay.to_dict() for overlay in self.versions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationState":
        state = cls()
        versions = [
            CalibrationOverlay.from_dict(entry)
            for entry in data.get("versions", [])
        ]
        if versions:
            if versions[0].version != 0:
                raise ValueError("calibration history must start at version 0")
            state.versions = versions
        active = int(data.get("active_version", 0))
        if not 0 <= active < len(state.versions):
            raise ValueError(f"active_version {active} out of range")
        state.active_version = active
        return state

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationState":
        return cls.from_dict(json.loads(text))


@dataclass
class _Pool:
    """Per-key accumulator while grouping drift rows."""

    samples: int = 0
    sum_log_ratio: float = 0.0
    sum_q: float = 0.0


class Calibrator:
    """Fits guardrailed coefficient updates from drift aggregates."""

    def __init__(self, policy: CalibrationPolicy | None = None) -> None:
        self.policy = policy or CalibrationPolicy()

    # -- fitting ---------------------------------------------------------------

    def fit(self, snapshot: dict, state: CalibrationState) -> CalibrationFit:
        """One fit pass over a drift window.

        ``snapshot`` is a :meth:`DriftTracker.snapshot` dict (live or
        loaded from ``drift.json``).  The returned fit is *not* applied;
        pass its updates to :meth:`CalibrationState.apply` — or use
        :meth:`fit_and_apply`.
        """
        policy = self.policy
        pools: dict[CoefficientKey, _Pool] = {}
        fit = CalibrationFit()
        considered_q = 0.0
        considered_n = 0

        for row in snapshot.get("rules", ()):
            variable = row.get("variable")
            if variable not in policy.variables:
                continue
            wrapper = row.get("wrapper") or row.get("source") or ""
            if not wrapper or wrapper == MEDIATOR_SOURCE:
                # Mediator-side compose operators are never calibrated —
                # only work a wrapper actually executed.
                continue
            count = int(row.get("count", 0))
            if count <= 0:
                continue
            log_ratio = row.get("sum_log_ratio")
            if log_ratio is None:
                geo = row.get("geo_mean_ratio")
                if geo is None or geo <= 0.0:
                    continue
                log_ratio = count * math.log(geo)
            scope = row.get("scope") if policy.per_scope else None
            key = CoefficientKey(wrapper, scope, variable)
            pool = pools.setdefault(key, _Pool())
            pool.samples += count
            pool.sum_log_ratio += float(log_ratio)
            pool.sum_q += float(row.get("mean_q_error", 0.0)) * count
            considered_q += float(row.get("mean_q_error", 0.0)) * count
            considered_n += count

        fit.window_mean_q = considered_q / considered_n if considered_n else 0.0

        for key in sorted(pools, key=CoefficientKey.as_string):
            pool = pools[key]
            if pool.samples < policy.min_samples:
                fit.skipped[key.as_string()] = (
                    f"below min_samples ({pool.samples} < {policy.min_samples})"
                )
                continue
            previous = state.multiplier_for(key.wrapper, key.scope, key.variable)
            measured = math.exp(pool.sum_log_ratio / pool.samples)
            proposed = self.propose(previous, measured)
            if previous > 0 and abs(proposed / previous - 1.0) < policy.min_change:
                fit.skipped[key.as_string()] = "no-op (below min_change)"
                continue
            fit.updates.append(
                CoefficientUpdate(
                    key=key,
                    previous=previous,
                    proposed=proposed,
                    measured_ratio=measured,
                    samples=pool.samples,
                )
            )
            fit.observations += pool.samples
        return fit

    def propose(self, previous: float, measured_ratio: float) -> float:
        """The guardrailed update rule for one coefficient.

        ``measured_ratio`` is the residual actual/estimate ratio under
        ``previous``; the smoothed target is ``previous * ratio^alpha``,
        then step-bounded, then range-clamped.
        """
        policy = self.policy
        smoothed = previous * measured_ratio**policy.alpha
        stepped = min(
            max(smoothed, previous / policy.max_step),
            previous * policy.max_step,
        )
        return min(max(stepped, policy.clamp_min), policy.clamp_max)

    def fit_and_apply(
        self, snapshot: dict, state: CalibrationState, note: str = ""
    ) -> tuple[CalibrationFit, CalibrationOverlay | None]:
        """Fit, and apply as a new overlay iff anything changed."""
        fit = self.fit(snapshot, state)
        if not fit.changed:
            return fit, None
        overlay = state.apply(
            fit.updates,
            note=note or f"fit over {fit.observations} observations",
            observations=fit.observations,
        )
        return fit, overlay


def render_calibration_state(state: CalibrationState) -> str:
    """Aligned text table of the overlay history (CLI ``show``)."""
    lines = [
        f"calibration: {len(state)} version(s), "
        f"active v{state.active_version}"
    ]
    for overlay in state.versions:
        marker = "*" if overlay.version == state.active_version else " "
        lines.append(
            f"{marker} v{overlay.version}  "
            f"{len(overlay.multipliers)} coefficient(s)  "
            f"obs={overlay.fitted_observations}  {overlay.note}"
        )
        for key, value in sorted(
            overlay.multipliers.items(), key=lambda kv: kv[0].as_string()
        ):
            lines.append(f"    {key.as_string()} = {value:.4f}")
    return "\n".join(lines)


__all__ = [
    "CalibrationFit",
    "CalibrationOverlay",
    "CalibrationPolicy",
    "CalibrationState",
    "Calibrator",
    "CoefficientKey",
    "CoefficientUpdate",
    "render_calibration_state",
]
