"""The mediator query optimizer (§2.2).

"From a declarative query, the mediator can generate multiple access plans
involving local operations at the data source level and global ones at the
mediator level.  The plans can differ widely in execution time."

The optimizer enumerates, System-R style over a :class:`QuerySpec`:

* **access plans** per collection — filters pushed into the wrapper when
  its capabilities allow, applied mediator-side otherwise;
* **join orders** — dynamic programming over collection subsets (bushy),
  falling back to a greedy chain beyond ``max_exhaustive_collections``;
* **join placement** — cross-wrapper joins run at the mediator; a subset
  served by a single join-capable wrapper may instead be pushed down as
  one subquery (one Submit);
* **decorations** — grouping, distinct, ordering and projection above the
  join tree (pushed into the wrapper for single-collection queries when
  capable, both variants costed).

Every candidate is costed by the blended estimator; with
``use_pruning=True`` the §4.3.2 branch-and-bound extension aborts the
estimation of any candidate as soon as a partial cost exceeds the best
complete plan so far.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.algebra.expressions import (
    AttributeRef,
    Comparison,
    Literal,
    Predicate,
    conjunction,
)
from repro.algebra.logical import (
    Aggregate,
    BindJoin,
    Distinct,
    Join,
    PlanNode,
    Project,
    Scan,
    Scatter,
    Select,
    Sort,
    Submit,
    clone_plan,
)
from repro.algebra.logical import Union
from repro.core.estimator import CostEstimator, PlanEstimate
from repro.errors import QueryError
from repro.mediator.catalog import MediatorCatalog, PartitionScheme
from repro.mediator.queryspec import QuerySpec, UnionSpec
from repro.obs.hotpath import NULL_HOTPATH, HotpathProfiler
from repro.obs.trace import NULL_TRACER, SpanTracer


@dataclass
class OptimizerOptions:
    """Knobs for the enumeration (ablation points of DESIGN.md).

    ``objective`` selects which §2.3 time form the optimizer minimizes:
    ``"total_time"`` (throughput, the default) or ``"time_first"``
    (first-tuple response time — interactive clients).  Branch-and-bound
    pruning only applies to the total-time objective, since partial
    TotalTime sums do not bound TimeFirst.
    """

    use_pruning: bool = True
    push_joins_to_wrappers: bool = True
    push_filters: bool = True
    #: Consider dependent (bind) joins: probe an indexed inner collection
    #: with the outer side's join keys instead of shipping it whole.
    use_bind_join: bool = True
    bind_join_batch_size: int = 50
    max_exhaustive_collections: int = 7
    objective: str = "total_time"
    #: Cost plans for a concurrently-dispatching executor: ``True``/``False``
    #: forces the estimator's parallel-aware TotalTime combinator on/off
    #: (see ``EstimatorOptions.parallel_submits``); ``None`` leaves the
    #: estimator's own setting alone.  With the combinator on, the
    #: enumerator's candidates whose submits overlap genuinely cost less,
    #: so the optimizer prefers them.
    parallel_submits: "bool | None" = None
    max_concurrency: "int | None" = None

    def __post_init__(self) -> None:
        if self.objective not in ("total_time", "time_first"):
            raise ValueError(f"unknown objective {self.objective!r}")


@dataclass
class OptimizerStats:
    """Work counters for the overhead experiments."""

    candidates_considered: int = 0
    candidates_pruned: int = 0
    variables_computed: int = 0
    formulas_evaluated: int = 0


@dataclass
class OptimizationResult:
    """The chosen plan with its estimate and enumeration statistics."""

    plan: PlanNode
    estimate: PlanEstimate
    stats: OptimizerStats = field(default_factory=OptimizerStats)

    @property
    def estimated_total_ms(self) -> float:
        return self.estimate.total_time


@dataclass
class _Candidate:
    plan: PlanNode
    estimate: PlanEstimate
    cost: float = 0.0


class Optimizer:
    """Cost-based plan selection for one mediator."""

    def __init__(
        self,
        catalog: MediatorCatalog,
        estimator: CostEstimator,
        options: OptimizerOptions | None = None,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator
        self.options = options or OptimizerOptions()
        #: Telemetry sink; defaults to the shared no-op tracer.
        self.tracer: SpanTracer = NULL_TRACER
        #: Wall-clock phase timers; defaults to the shared no-op profiler.
        self.hotpath: HotpathProfiler = NULL_HOTPATH
        #: Scheduler-fed health view: a callable returning the wrapper
        #: names whose circuit breakers are currently not closed.  The
        #: mediator wires in ``scheduler.open_breaker_wrappers``; replica
        #: binding excludes those members at costing time.
        self.health_view: Callable[[], Iterable[str]] | None = None
        if self.options.parallel_submits is not None:
            estimator.options.parallel_submits = self.options.parallel_submits
            estimator.options.max_concurrency = self.options.max_concurrency

    # -- public entry point ---------------------------------------------------

    def optimize(self, spec: QuerySpec | UnionSpec) -> OptimizationResult:
        """Choose the cheapest complete plan for a query."""
        result = self._optimize_any(spec)
        if not self.catalog.has_replicas():
            # No replica sets: the chosen plan and estimate pass through
            # untouched — the replica layer is entirely inert.
            return result
        return self._bind_replicas(result)

    def _optimize_any(self, spec: QuerySpec | UnionSpec) -> OptimizationResult:
        if isinstance(spec, UnionSpec):
            return self._optimize_union(spec)
        stats = OptimizerStats()
        join_plan = self._best_join_plan(spec, stats)
        candidates = self._decorated_candidates(spec, join_plan, stats)
        best = min(candidates, key=lambda c: c.cost)
        return OptimizationResult(plan=best.plan, estimate=best.estimate, stats=stats)

    def _optimize_union(self, spec: UnionSpec) -> OptimizationResult:
        """Optimize each branch independently, then combine (§2.2's union
        operator runs at the mediator)."""
        stats = OptimizerStats()
        branch_results = [self._optimize_any(branch) for branch in spec.branches]
        plan: PlanNode = branch_results[0].plan
        for result in branch_results[1:]:
            plan = Union(plan, result.plan)
        if spec.distinct:
            plan = Distinct(plan)
        for result in branch_results:
            stats.candidates_considered += result.stats.candidates_considered
            stats.candidates_pruned += result.stats.candidates_pruned
            stats.variables_computed += result.stats.variables_computed
            stats.formulas_evaluated += result.stats.formulas_evaluated
        candidate = self._cost(plan, stats, None)
        assert candidate is not None
        return OptimizationResult(
            plan=candidate.plan, estimate=candidate.estimate, stats=stats
        )

    # -- replica binding ----------------------------------------------------------

    def _healthy_members(self, members: Sequence[str]) -> list[str]:
        """Members whose breaker is closed; all of them when every member
        is open (runtime failover and partial mode then take over)."""
        open_wrappers = (
            set(self.health_view()) if self.health_view is not None else set()
        )
        healthy = [m for m in members if m not in open_wrappers]
        return healthy if healthy else list(members)

    def _price_replica(self, submit: Submit, member: str) -> float:
        """Estimated TotalTime of the submit's subtree served by one
        replica member.  The subtree is cloned with fresh node ids: the
        estimator's subplan cache keys on (node_id, variable) and cached
        values depend on the owning source, so re-pricing a shared
        subtree under a different wrapper would poison the cache."""
        clone = Submit(
            clone_plan(submit.child),
            member,
            shard=submit.shard,
            shard_of=submit.shard_of,
        )
        return self.estimator.estimate(clone).total_time

    def rank_replicas(
        self, submit: Submit, candidates: tuple[str, ...]
    ) -> list[str]:
        """Candidates ordered cheapest-first by estimated TotalTime (the
        scheduler's failover/hedge ranker; stable on ties)."""
        priced = []
        for index, member in enumerate(candidates):
            try:
                cost = self._price_replica(submit, member)
            except Exception:
                cost = float("inf")
            priced.append((cost, index, member))
        priced.sort()
        return [member for _, _, member in priced]

    def _bind_replicas(self, result: OptimizationResult) -> OptimizationResult:
        """Re-target each Submit of a replicated source at the cheapest
        healthy member, tagging the choice in the estimate's provenance.

        Submits of unreplicated sources — and the plan/estimate objects
        themselves when nothing rebinds — pass through untouched.
        """
        catalog = self.catalog
        rebound: dict[int, Submit] = {}
        for node in result.plan.walk():
            if not isinstance(node, Submit):
                continue
            members = catalog.replica_members(node.wrapper)
            if len(members) == 1:
                continue
            best_name: str | None = None
            best_cost = float("inf")
            for member in self._healthy_members(members):
                try:
                    cost = self._price_replica(node, member)
                except Exception:
                    continue
                if cost < best_cost:
                    best_cost, best_name = cost, member
            if best_name is not None and best_name != node.wrapper:
                rebound[node.node_id] = Submit(
                    clone_plan(node.child),
                    best_name,
                    shard=node.shard,
                    shard_of=node.shard_of,
                )
                if self.tracer.enabled:
                    self.tracer.event(
                        "replica.bound",
                        kind="replica",
                        wrapper=node.wrapper,
                        replica=best_name,
                        cost_ms=best_cost,
                    )
        estimate = result.estimate
        plan = result.plan
        if rebound:
            plan = self._replace_submits(plan, rebound)
            variables: tuple[str, ...] = ("TotalTime", "CountObject", "TotalSize")
            if self.options.objective == "time_first":
                variables = ("TimeFirst",) + variables
            estimate = self.estimator.estimate(plan, variables=variables)
        self._tag_replica_provenance(plan, estimate)
        if not rebound:
            return result
        return OptimizationResult(plan=plan, estimate=estimate, stats=result.stats)

    def _tag_replica_provenance(self, plan: PlanNode, estimate) -> None:
        """Append ``| replica <name>`` to the TotalTime provenance of
        every Submit bound against a replicated source — the EXPLAIN
        trail of which member the optimizer chose."""
        for node in plan.walk():
            if not isinstance(node, Submit):
                continue
            if len(self.catalog.replica_members(node.wrapper)) == 1:
                continue
            node_estimate = estimate.nodes.get(node.node_id)
            if node_estimate is None:
                continue
            provenance = node_estimate.provenance.get("TotalTime")
            if provenance is None or " | replica " in provenance:
                continue
            node_estimate.provenance["TotalTime"] = (
                f"{provenance} | replica {node.wrapper}"
            )

    def _replace_submits(
        self, node: PlanNode, rebound: dict[int, Submit]
    ) -> PlanNode:
        """Rebuild the plan spine over rebound submits, sharing every
        untouched subtree (their node ids keep their cached estimates)."""
        if isinstance(node, Submit):
            return rebound.get(node.node_id, node)
        if isinstance(node, Select):
            child = self._replace_submits(node.child, rebound)
            return node if child is node.child else Select(child, node.predicate)
        if isinstance(node, Project):
            child = self._replace_submits(node.child, rebound)
            if child is node.child:
                return node
            return Project(child, node.attributes, node.renames)
        if isinstance(node, Sort):
            child = self._replace_submits(node.child, rebound)
            return node if child is node.child else Sort(child, node.keys, node.descending)
        if isinstance(node, Distinct):
            child = self._replace_submits(node.child, rebound)
            return node if child is node.child else Distinct(child)
        if isinstance(node, Aggregate):
            child = self._replace_submits(node.child, rebound)
            if child is node.child:
                return node
            return Aggregate(child, node.group_by, node.aggregates)
        if isinstance(node, Join):
            left = self._replace_submits(node.left, rebound)
            right = self._replace_submits(node.right, rebound)
            if left is node.left and right is node.right:
                return node
            return Join(left, right, node.predicate)
        if isinstance(node, BindJoin):
            outer = self._replace_submits(node.outer, rebound)
            if outer is node.outer:
                return node
            return BindJoin(
                outer,
                node.outer_attribute,
                node.inner_collection,
                node.inner_attribute,
                node.wrapper,
                node.inner_filters,
                node.batch_size,
            )
        if isinstance(node, Union):
            left = self._replace_submits(node.left, rebound)
            right = self._replace_submits(node.right, rebound)
            if left is node.left and right is node.right:
                return node
            return Union(left, right)
        if isinstance(node, Scatter):
            branches = [
                self._replace_submits(branch, rebound) for branch in node.branches
            ]
            if all(new is old for new, old in zip(branches, node.branches)):
                return node
            return Scatter(
                branches,  # type: ignore[arg-type]
                node.collection,
                node.shard_key,
                node.total_shards,
            )
        return node

    # -- costing helper ----------------------------------------------------------

    def _cost(
        self, plan: PlanNode, stats: OptimizerStats, bound: float | None
    ) -> _Candidate | None:
        """Estimate one candidate; None when pruned by the §4.3.2 bound."""
        hotpath = self.hotpath
        if hotpath.enabled:
            with hotpath.phase("candidate"):
                return self._cost_traced(plan, stats, bound)
        return self._cost_traced(plan, stats, bound)

    def _cost_traced(
        self, plan: PlanNode, stats: OptimizerStats, bound: float | None
    ) -> _Candidate | None:
        tracer = self.tracer
        if not tracer.enabled:
            return self._cost_inner(plan, stats, bound)
        with tracer.span(
            f"candidate:{plan.operator_name}",
            kind="candidate",
            plan=plan.describe(),
            bound_ms=bound,
        ) as span:
            candidate = self._cost_inner(plan, stats, bound)
            span.set(
                pruned=candidate is None,
                cost_ms=candidate.cost if candidate is not None else None,
            )
        return candidate

    def _cost_inner(
        self, plan: PlanNode, stats: OptimizerStats, bound: float | None
    ) -> _Candidate | None:
        stats.candidates_considered += 1
        first_tuple = self.options.objective == "time_first"
        bound_ms = bound if self.options.use_pruning and not first_tuple else None
        variables = ("TotalTime", "CountObject", "TotalSize")
        if first_tuple:
            variables = ("TimeFirst",) + variables
        estimate = self.estimator.estimate(
            plan, bound_ms=bound_ms, variables=variables
        )
        stats.variables_computed += self.estimator.last_counters.variables_computed
        stats.formulas_evaluated += self.estimator.last_counters.formulas_evaluated
        if estimate.pruned:
            stats.candidates_pruned += 1
            return None
        cost_value = (
            float(estimate.root.values["TimeFirst"])
            if first_tuple
            else estimate.total_time
        )
        return _Candidate(plan=plan, estimate=estimate, cost=cost_value)

    # -- access plans ------------------------------------------------------------------

    def _access_plan(self, spec: QuerySpec, collection: str) -> PlanNode:
        """Scan + filters for one collection, submitted to its wrapper.

        Filters go inside the Submit when the wrapper supports selection
        (and ``push_filters`` is on), above it otherwise.  Partitioned
        collections fan out to their shards instead.
        """
        if self.catalog.is_partitioned(collection):
            return self._scatter_access_plan(spec, collection)
        wrapper = self.catalog.wrapper_of(collection)
        filters = spec.filters_for(collection)
        inner: PlanNode = Scan(collection)
        outer_filters: list[Predicate] = []
        if filters:
            if self.options.push_filters and "select" in wrapper.capabilities:
                inner = Select(inner, conjunction(list(filters)))
            else:
                outer_filters = list(filters)
        plan: PlanNode = Submit(inner, wrapper.name)
        if outer_filters:
            plan = Select(plan, conjunction(outer_filters))
        return plan

    def _scatter_access_plan(self, spec: QuerySpec, collection: str) -> PlanNode:
        """Scatter the per-collection subquery over the shards that can
        hold matching rows.

        Shard pruning: an equality predicate on the shard key routes to
        the owning shard; under range partitioning, range predicates keep
        only overlapping shards.  Filters push into each branch's Submit
        when that shard's wrapper supports selection; if any branch
        cannot push, the full conjunction is (re-)applied mediator-side
        above the scatter — selections are idempotent, so pushed
        branches stay correct.
        """
        scheme = self.catalog.partition(collection)
        filters = list(spec.filters_for(collection))
        indices = self._pruned_shards(scheme, filters)
        branches: list[Submit] = []
        needs_outer = False
        for index in indices:
            shard = scheme.shards[index]
            wrapper = self.catalog.wrapper(shard.wrapper)
            inner: PlanNode = Scan(shard.collection)
            if filters:
                if self.options.push_filters and "select" in wrapper.capabilities:
                    inner = Select(inner, conjunction(filters))
                else:
                    needs_outer = True
            branches.append(
                Submit(inner, wrapper.name, shard=index, shard_of=collection)
            )
        plan: PlanNode = Scatter(
            branches, collection, scheme.shard_key, len(scheme.shards)
        )
        if filters and needs_outer:
            plan = Select(plan, conjunction(filters))
        return plan

    def _pruned_shards(
        self, scheme: PartitionScheme, filters: list[Predicate]
    ) -> tuple[int, ...]:
        """Shard indices that can hold rows satisfying the filters.

        Only top-level conjuncts comparing the shard key to a literal
        prune (a disjunct might match any shard).  Contradictory
        predicates leave one arbitrary shard — its branch then filters
        every row out, which keeps the plan well-formed.
        """
        keep = set(range(len(scheme.shards)))
        for predicate in filters:
            for conjunct in predicate.conjuncts():
                if not isinstance(conjunct, Comparison):
                    continue
                comparison = conjunct.normalized()
                if not comparison.is_attr_value:
                    continue
                attribute = comparison.left
                literal = comparison.right
                assert isinstance(attribute, AttributeRef)
                assert isinstance(literal, Literal)
                if attribute.name != scheme.shard_key:
                    continue
                if attribute.collection not in (None, scheme.collection):
                    continue
                if comparison.op == "=":
                    keep &= set(scheme.shards_for_equality(literal.value))
                elif comparison.op in ("<", "<="):
                    keep &= set(scheme.shards_for_range(None, literal.value))
                elif comparison.op in (">", ">="):
                    keep &= set(scheme.shards_for_range(literal.value, None))
        if not keep:
            return (0,)
        return tuple(sorted(keep))

    def _single_wrapper_for(self, collection: str) -> str | None:
        """The wrapper able to answer for the *whole* collection, or None.

        For a partitioned collection this exists only in the 1-shard
        overlay layout (the scheme's lone shard is the logical collection
        itself); a true fan-out has no single answering wrapper, so
        whole-subquery pushdown and bind-join probing do not apply.
        """
        if self.catalog.is_partitioned(collection):
            scheme = self.catalog.partition(collection)
            if len(scheme.shards) > 1:
                return None
            shard = scheme.shards[0]
            if shard.collection != collection:
                return None
            return shard.wrapper
        return self.catalog.wrapper_for(collection)

    def _wrapper_side_join_tree(
        self, spec: QuerySpec, collections: list[str]
    ) -> PlanNode | None:
        """A left-deep join tree entirely inside one wrapper, or None when
        the join graph does not connect the collections."""
        plan: PlanNode | None = None
        placed: set[str] = set()
        remaining = list(collections)
        while remaining:
            progressed = False
            for collection in list(remaining):
                leaf: PlanNode = Scan(collection)
                filters = spec.filters_for(collection)
                if filters:
                    leaf = Select(leaf, conjunction(list(filters)))
                if plan is None:
                    plan, placed = leaf, {collection}
                    remaining.remove(collection)
                    progressed = True
                    break
                connecting = spec.joins_between(placed, {collection})
                if not connecting:
                    continue
                plan = Join(plan, leaf, connecting[0])
                for extra in connecting[1:]:
                    plan = Select(plan, extra)
                placed.add(collection)
                remaining.remove(collection)
                progressed = True
                break
            if not progressed:
                return None
        return plan

    # -- join enumeration --------------------------------------------------------------

    def _best_join_plan(self, spec: QuerySpec, stats: OptimizerStats) -> _Candidate:
        collections = spec.collections
        if len(collections) == 1:
            plan = self._access_plan(spec, collections[0])
            candidate = self._cost(plan, stats, None)
            assert candidate is not None
            return candidate
        if len(collections) <= self.options.max_exhaustive_collections:
            return self._dynamic_programming(spec, stats)
        return self._greedy_chain(spec, stats)

    def _dynamic_programming(
        self, spec: QuerySpec, stats: OptimizerStats
    ) -> _Candidate:
        collections = spec.collections
        best: dict[frozenset[str], _Candidate] = {}
        for collection in collections:
            plan = self._access_plan(spec, collection)
            candidate = self._cost(plan, stats, None)
            assert candidate is not None
            best[frozenset([collection])] = candidate

        for size in range(2, len(collections) + 1):
            for subset in itertools.combinations(collections, size):
                key = frozenset(subset)
                current: _Candidate | None = None
                # Pushed-down whole-subset subquery at a single wrapper.
                if self.options.push_joins_to_wrappers:
                    current = self._pushed_candidate(spec, list(subset), stats, current)
                # Mediator joins over every split with a connecting predicate.
                for left_size in range(1, size):
                    for left_subset in itertools.combinations(subset, left_size):
                        left_key = frozenset(left_subset)
                        right_key = key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        connecting = spec.joins_between(set(left_key), set(right_key))
                        if not connecting:
                            continue
                        plan: PlanNode = Join(
                            best[left_key].plan,
                            best[right_key].plan,
                            connecting[0],
                        )
                        for extra in connecting[1:]:
                            plan = Select(plan, extra)
                        bound = current.cost if current is not None else None
                        candidate = self._cost(plan, stats, bound)
                        if candidate is not None and (
                            current is None or candidate.cost < current.cost
                        ):
                            current = candidate
                        bind_plan = self._bind_join_plan(
                            spec, best[left_key].plan, right_key, connecting
                        )
                        if bind_plan is not None:
                            bound = current.cost if current is not None else None
                            candidate = self._cost(bind_plan, stats, bound)
                            if candidate is not None and (
                                current is None or candidate.cost < current.cost
                            ):
                                current = candidate
                if current is not None:
                    best[key] = current

        full = frozenset(collections)
        if full not in best:
            # Disconnected join graph: fall back to cartesian chaining.
            return self._cartesian_fallback(spec, best, stats)
        return best[full]

    def _pushed_candidate(
        self,
        spec: QuerySpec,
        subset: list[str],
        stats: OptimizerStats,
        current: _Candidate | None,
    ) -> _Candidate | None:
        wrappers = {self._single_wrapper_for(c) for c in subset}
        if len(wrappers) != 1 or None in wrappers:
            return current
        wrapper = self.catalog.wrapper(next(iter(wrappers)))
        if "join" not in wrapper.capabilities:
            return current
        inner = self._wrapper_side_join_tree(spec, subset)
        if inner is None:
            return current
        bound = current.cost if current is not None else None
        candidate = self._cost(Submit(inner, wrapper.name), stats, bound)
        if candidate is not None and (
            current is None or candidate.cost < current.cost
        ):
            return candidate
        return current

    def _bind_join_plan(
        self,
        spec: QuerySpec,
        outer_plan: PlanNode,
        inner_group: frozenset[str],
        connecting: list,
    ) -> PlanNode | None:
        """A dependent-join candidate, when the inner side is a single
        collection with an indexed join attribute (catalog statistics) and
        a selection-capable wrapper."""
        if not self.options.use_bind_join or len(inner_group) != 1:
            return None
        inner = next(iter(inner_group))
        join = connecting[0]
        inner_attr = join.right
        outer_attr = join.left
        wrapper_name = self._single_wrapper_for(inner)
        if wrapper_name is None:
            return None
        wrapper = self.catalog.wrapper(wrapper_name)
        if "select" not in wrapper.capabilities:
            return None
        if inner not in self.catalog.statistics:
            return None
        stats = self.catalog.statistics.get(inner)
        try:
            attr_stats = stats.attribute(inner_attr.name)
        except Exception:
            return None
        if not attr_stats.indexed:
            return None
        filters = spec.filters_for(inner)
        plan: PlanNode = BindJoin(
            outer=outer_plan,
            outer_attribute=outer_attr,
            inner_collection=inner,
            inner_attribute=inner_attr,
            wrapper=wrapper.name,
            inner_filters=conjunction(list(filters)) if filters else None,
            batch_size=self.options.bind_join_batch_size,
        )
        for extra in connecting[1:]:
            plan = Select(plan, extra)
        return plan

    def _greedy_chain(self, spec: QuerySpec, stats: OptimizerStats) -> _Candidate:
        """Greedy join ordering for very wide queries: start from the
        cheapest access plan, repeatedly join the cheapest connected
        extension."""
        pending = {
            collection: self._cost(self._access_plan(spec, collection), stats, None)
            for collection in spec.collections
        }
        placed_name, current = min(
            pending.items(), key=lambda item: item[1].cost  # type: ignore[union-attr]
        )
        assert current is not None
        placed = {placed_name}
        del pending[placed_name]
        while pending:
            extension: tuple[str, _Candidate] | None = None
            for name, access in pending.items():
                assert access is not None
                connecting = spec.joins_between(placed, {name})
                if not connecting:
                    continue
                plan: PlanNode = Join(current.plan, access.plan, connecting[0])
                for extra in connecting[1:]:
                    plan = Select(plan, extra)
                bound = extension[1].cost if extension is not None else None
                candidate = self._cost(plan, stats, bound)
                if candidate is not None and (
                    extension is None or candidate.cost < extension[1].cost
                ):
                    extension = (name, candidate)
            if extension is None:
                raise QueryError(
                    f"join graph does not connect {sorted(placed)} to "
                    f"{sorted(pending)} (cartesian products need an explicit "
                    "join predicate)"
                )
            placed.add(extension[0])
            del pending[extension[0]]
            current = extension[1]
        return current

    def _cartesian_fallback(
        self,
        spec: QuerySpec,
        best: dict[frozenset[str], _Candidate],
        stats: OptimizerStats,
    ) -> _Candidate:
        raise QueryError(
            "the join graph is disconnected; add join predicates "
            f"connecting {spec.collections}"
        )

    # -- decorations -------------------------------------------------------------------

    def _decorated_candidates(
        self, spec: QuerySpec, join_candidate: _Candidate, stats: OptimizerStats
    ) -> list[_Candidate]:
        """Apply grouping/distinct/sort/projection; for single-collection
        queries also try pushing the whole pipeline into the wrapper."""
        candidates: list[_Candidate] = []
        mediator_plan = self._decorate(spec, join_candidate.plan)
        candidate = self._cost(mediator_plan, stats, None)
        assert candidate is not None
        candidates.append(candidate)

        if spec.is_single_collection and self._has_decorations(spec):
            collection = spec.collections[0]
            wrapper_name = self._single_wrapper_for(collection)
            if wrapper_name is None:
                return candidates
            wrapper = self.catalog.wrapper(wrapper_name)
            needed = {"select"} if spec.filters_for(collection) else set()
            if spec.aggregates or spec.group_by:
                needed.add("aggregate")
            if spec.distinct:
                needed.add("distinct")
            if spec.order_by:
                needed.add("sort")
            if spec.projection is not None:
                needed.add("project")
            if needed <= wrapper.capabilities:
                inner: PlanNode = Scan(collection)
                filters = spec.filters_for(collection)
                if filters:
                    inner = Select(inner, conjunction(list(filters)))
                pushed = Submit(self._decorate(spec, inner), wrapper.name)
                candidate = self._cost(pushed, stats, candidates[0].cost)
                if candidate is not None:
                    candidates.append(candidate)
        return candidates

    @staticmethod
    def _has_decorations(spec: QuerySpec) -> bool:
        return bool(
            spec.aggregates
            or spec.group_by
            or spec.distinct
            or spec.order_by
            or spec.projection is not None
        )

    @staticmethod
    def _decorate(spec: QuerySpec, plan: PlanNode) -> PlanNode:
        # SQL evaluation order: GROUP BY → SELECT list → DISTINCT → ORDER
        # BY.  ORDER BY may reference non-projected columns (standard SQL)
        # unless DISTINCT is present, in which case the sort keys must
        # survive projection; when they would not, sorting happens before
        # the projection discards them.
        if spec.aggregates or spec.group_by:
            plan = Aggregate(plan, spec.group_by, spec.aggregates)
        project = spec.projection is not None and not (
            spec.aggregates or spec.group_by
        )
        sort_keys_projected = spec.projection is None or all(
            key in spec.projection for key in spec.order_by
        )
        if spec.order_by and not sort_keys_projected:
            if spec.distinct:
                raise QueryError(
                    "ORDER BY columns must appear in SELECT DISTINCT "
                    f"output: {spec.order_by} vs {spec.projection}"
                )
            plan = Sort(plan, spec.order_by, spec.order_descending)
        if project:
            plan = Project(
                plan, spec.projection, spec.projection_renames  # type: ignore[arg-type]
            )
        if spec.distinct:
            plan = Distinct(plan)
        if spec.order_by and sort_keys_projected:
            plan = Sort(plan, spec.order_by, spec.order_descending)
        return plan
