"""The execution-backend seam: where time and dispatch actually happen.

Everything the executor/scheduler stack does with *time* — waiting for a
wrapper, sleeping out a retry backoff, overlapping a wave of submits,
enforcing a per-submit deadline — funnels through one small interface,
:class:`ExecutionBackend`:

* :attr:`ExecutionBackend.clock` — the accounting clock all elapsed
  times are read from;
* :meth:`ExecutionBackend.measured_execute` — run one wrapper subquery
  and report how long it took (with an optional wait budget — the
  deadline primitive);
* :meth:`ExecutionBackend.run_wave` — execute a wave of independent
  dispatch branches;
* :meth:`ExecutionBackend.sleep` — an idle wait (retry backoff).

Two implementations exist.  :class:`SimBackend` (here) is the seed
stack: a :class:`~repro.sources.clock.SimClock` that components charge
explicitly, waves executed sequentially with their overlap *accounted*
as a list-scheduled makespan through :class:`~repro.sources.clock.
ParallelClock`.  It is the default everywhere and is byte-identical to
the pre-seam code path (``tests/rt/test_backend_equivalence.py`` proves
this against captured seed transcripts).  :class:`~repro.rt.backend.
RealTimeBackend` (``repro.rt``) replaces simulated charging with wall
clocks, thread pools and genuine sleeps — see ``docs/backends.md``.

The charge strategies (:class:`SequentialCharges` / :class:`WaveCharges`
and their real-time counterparts) stay with their backend: they are the
per-dispatch cost-landing policy of that backend's clock discipline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import SourceFaultError, SourceUnavailableError
from repro.sources.clock import CostProfile, ParallelClock, SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.logical import PlanNode
    from repro.wrappers.base import ExecutionResult, Wrapper

#: Mediator device: pure in-memory processing plus the uniform
#: communication cost of §2.3 (150 ms per message, 0.002 ms per byte —
#: matching the generic model's MEDIATOR_COEFFICIENTS).
MEDIATOR_PROFILE = CostProfile(
    io_ms=0.0,
    cpu_ms_per_object=0.02,
    cpu_ms_per_eval=0.02,
    net_ms_per_message=150.0,
    net_ms_per_byte=0.002,
)


@dataclass
class MeasuredAttempt:
    """One wrapper execution as observed by a backend.

    ``duration_ms`` is the backend's notion of how long the attempt
    took: the wrapper-reported simulated response time on the sim
    backend, measured wall-clock time on the real one.  A faulted
    attempt carries its classification in ``error`` (``"unavailable"``
    or ``"transient"``) and the original exception in ``fault`` so
    non-resilient dispatch paths can re-raise it unchanged.  A
    deadline-cancelled attempt (real backend only) has ``result`` and
    ``error`` both ``None`` with ``duration_ms`` at least the budget —
    the retry loop's deadline arithmetic then cancels it exactly like a
    sim wait that overran.
    """

    result: "ExecutionResult | None"
    duration_ms: float
    error: str | None = None
    fault: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def reraise(self) -> "ExecutionResult":
        """The result, or the original wrapper exception re-raised —
        the non-resilient dispatch contract (faults propagate)."""
        if self.fault is not None:
            raise self.fault
        assert self.result is not None
        return self.result


class SequentialCharges:
    """Charge strategy of sequential dispatch on the sim backend: every
    cost lands on the mediator clock immediately."""

    __slots__ = ("clock",)

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock

    def message(self, payload_bytes: int = 0) -> None:
        self.clock.charge_message(payload_bytes=payload_bytes)

    def wrapper_wait(self, ms: float) -> None:
        self.clock.advance(ms)

    def idle_wait(self, ms: float) -> None:
        # Backoff sleeps and cancelled waits go through charge_wait so
        # the clock's wait_ms counter separates them from device time.
        self.clock.charge_wait(ms)


class WaveCharges:
    """Charge strategy inside a sim wave: messages stay serialized,
    waits (wrapper time, backoff, cancelled remainders) accumulate into
    the branch duration committed as part of the wave makespan."""

    __slots__ = ("parallel", "branch_ms")

    def __init__(self, parallel: ParallelClock) -> None:
        self.parallel = parallel
        self.branch_ms = 0.0

    def message(self, payload_bytes: int = 0) -> None:
        self.parallel.charge_message(payload_bytes=payload_bytes)

    def wrapper_wait(self, ms: float) -> None:
        self.branch_ms += ms

    def idle_wait(self, ms: float) -> None:
        self.branch_ms += ms


class ExecutionBackend(ABC):
    """Where the executor/scheduler stack's time-and-dispatch effects land.

    The scheduler calls these hooks and *only* these hooks for anything
    temporal; everything else (caching, breakers, retry bookkeeping,
    span emission) is backend-independent policy that behaves the same
    on simulated and wall-clock time.
    """

    #: Human-readable backend name (surfaced in docs/diagnostics).
    name: str = "backend"
    #: True when ``clock`` reads wall time and waves really overlap.
    real_time: bool = False
    #: The accounting clock; ``now_ms``/``elapsed_since`` semantics of
    #: :class:`~repro.sources.clock.SimClock` (wall-clock backends
    #: subclass it with real readings).
    clock: SimClock

    @abstractmethod
    def attach_waves(self, max_concurrency: int | None) -> ParallelClock:
        """A fresh wave-accounting object for one scheduler (duck-typed
        :class:`~repro.sources.clock.ParallelClock`: ``begin_wave`` /
        ``charge_branch`` / ``charge_message`` / ``commit_wave`` /
        ``stats``)."""

    @abstractmethod
    def sequential_charges(self) -> Any:
        """The charge strategy of one sequential dispatch."""

    @abstractmethod
    def wave_charges(self, parallel: ParallelClock) -> Any:
        """The charge strategy of one wave branch."""

    @abstractmethod
    def measured_execute(
        self,
        wrapper: "Wrapper",
        plan: "PlanNode",
        budget_ms: float | None = None,
    ) -> MeasuredAttempt:
        """Run one wrapper subquery; report its duration and outcome.

        ``budget_ms`` is the deadline primitive: the remaining wait
        budget of the dispatching submit.  The sim backend ignores it
        (the retry loop cancels overruns arithmetically, after the
        fact); the real backend bounds the actual wait with it.
        """

    @abstractmethod
    def run_wave(
        self, branches: "Sequence[Callable[[], Any]]"
    ) -> "list[Any]":
        """Execute a wave of independent branch thunks; results in
        input order."""

    @abstractmethod
    def sleep(self, ms: float) -> None:
        """An idle wait outside any dispatch (sim: charged; real: slept)."""


class SimBackend(ExecutionBackend):
    """The seed stack behind the seam: simulated clock, sequential
    branch execution with makespan accounting.  Byte-identical to the
    pre-seam code path."""

    name = "sim"
    real_time = False

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock(MEDIATOR_PROFILE)

    def attach_waves(self, max_concurrency: int | None) -> ParallelClock:
        return ParallelClock(self.clock, max_concurrency)

    def sequential_charges(self) -> SequentialCharges:
        return SequentialCharges(self.clock)

    def wave_charges(self, parallel: ParallelClock) -> WaveCharges:
        return WaveCharges(parallel)

    def measured_execute(
        self,
        wrapper: "Wrapper",
        plan: "PlanNode",
        budget_ms: float | None = None,
    ) -> MeasuredAttempt:
        # The deadline budget is ignored by design: the sim retry loop
        # lets the (simulated) wait complete, then cancels the overrun
        # arithmetically — charging only the remaining budget.
        try:
            result = wrapper.execute(plan)
        except SourceUnavailableError as fault:
            return MeasuredAttempt(None, fault.elapsed_ms, "unavailable", fault)
        except SourceFaultError as fault:
            return MeasuredAttempt(None, fault.elapsed_ms, "transient", fault)
        return MeasuredAttempt(result, result.total_time_ms)

    def run_wave(
        self, branches: "Sequence[Callable[[], Any]]"
    ) -> "list[Any]":
        # Branches execute one after another, in input order, so results
        # — and the wrapper engines' own clocks — stay deterministic;
        # only the accounting treats them as overlapping.
        return [branch() for branch in branches]

    def sleep(self, ms: float) -> None:
        self.clock.charge_wait(ms)
