"""The mediator-side execution engine (§2.2, Steps 4–6).

Executes the chosen plan: ``Submit`` nodes dispatch their subtree to the
owning wrapper (Step 4) and collect the subanswer (Step 5); the operators
above the submits — the *composition subquery* — run at the mediator over
in-memory rows.  All time is accounted on the mediator's simulated clock:
wrapper execution advances it by the wrapper's measured response time,
communication charges the configured per-message/per-byte costs, and
local operators charge per-row CPU.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.algebra.expressions import AttributeRef, Or, conjunction, eq
from repro.algebra.logical import (
    Aggregate,
    BindJoin,
    Distinct,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    Sort,
    Submit,
    Union,
)
from repro.errors import PlanError
from repro.mediator.catalog import MediatorCatalog
from repro.sources.clock import CostProfile, SimClock
from repro.sources.pages import Row
from repro.wrappers.base import ExecutionResult
from repro.wrappers.interpreter import _aggregate_value, _merge_rows

#: Mediator device: pure in-memory processing plus the uniform
#: communication cost of §2.3 (150 ms per message, 0.002 ms per byte —
#: matching the generic model's MEDIATOR_COEFFICIENTS).
MEDIATOR_PROFILE = CostProfile(
    io_ms=0.0,
    cpu_ms_per_object=0.02,
    cpu_ms_per_eval=0.02,
    net_ms_per_message=150.0,
    net_ms_per_byte=0.002,
)


class MediatorExecutor:
    """Runs complete mediator plans."""

    def __init__(
        self, catalog: MediatorCatalog, clock: SimClock | None = None
    ) -> None:
        self.catalog = catalog
        self.clock = clock if clock is not None else SimClock(MEDIATOR_PROFILE)
        self._submit_log: list[tuple[Submit, ExecutionResult]] = []

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan; returns rows plus mediator-measured times."""
        self._submit_log = []
        start = self.clock.now_ms
        time_first: float | None = None
        rows: list[Row] = []
        for row in self._run(plan):
            if time_first is None:
                time_first = self.clock.elapsed_since(start)
            rows.append(row)
        return ExecutionResult(
            rows=rows,
            total_time_ms=self.clock.elapsed_since(start),
            time_first_ms=time_first if time_first is not None else 0.0,
            submit_log=list(self._submit_log),
        )

    # -- operators ---------------------------------------------------------------

    def _eval_charge(self, rows: int = 1) -> None:
        self.clock.advance(self.clock.profile.cpu_ms_per_eval * rows)

    def _run(self, node: PlanNode) -> Iterator[Row]:
        if isinstance(node, Submit):
            yield from self._run_submit(node)
        elif isinstance(node, Scan):
            raise PlanError(
                f"scan({node.collection}) reached the mediator executor "
                "without a submit — plans must route scans through wrappers"
            )
        elif isinstance(node, Select):
            for row in self._run(node.child):
                self._eval_charge()
                if node.predicate.evaluate(row):
                    yield row
        elif isinstance(node, Project):
            for row in self._run(node.child):
                self._eval_charge()
                yield {
                    name: AttributeRef(node.source_of(name)).evaluate(row)
                    for name in node.attributes
                }
        elif isinstance(node, Sort):
            rows = list(self._run(node.child))
            self._eval_charge(len(rows))
            keyed = sorted(
                rows,
                key=lambda r: tuple(AttributeRef(k).evaluate(r) for k in node.keys),
                reverse=node.descending,
            )
            yield from keyed
        elif isinstance(node, Distinct):
            seen: set[tuple] = set()
            for row in self._run(node.child):
                self._eval_charge()
                fingerprint = tuple(sorted(row.items()))
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    yield row
        elif isinstance(node, Aggregate):
            yield from self._run_aggregate(node)
        elif isinstance(node, Join):
            yield from self._run_join(node)
        elif isinstance(node, BindJoin):
            yield from self._run_bindjoin(node)
        elif isinstance(node, Union):
            yield from self._run(node.left)
            yield from self._run(node.right)
        else:
            raise PlanError(f"mediator cannot execute {node.operator_name!r}")

    def _run_submit(self, node: Submit) -> Iterator[Row]:
        wrapper = self.catalog.wrapper(node.wrapper)
        self.clock.charge_message()  # ship the subquery
        result: ExecutionResult = wrapper.execute(node.child)
        self._submit_log.append((node, result))
        # The mediator waits for the wrapper (sequential execution model,
        # matching the additive TotalTime formulas of the cost model).
        self.clock.advance(result.total_time_ms)
        payload = self._payload_bytes(node.child, len(result.rows))
        self.clock.charge_message(payload_bytes=payload)
        yield from result.rows

    def _payload_bytes(self, subplan: PlanNode, row_count: int) -> int:
        """Approximate result size: rows × average object size of the
        subplan's primary collection (100 bytes when unknown)."""
        width = 100
        primary = subplan.primary_collection()
        if primary is not None and primary in self.catalog.statistics:
            width = max(1, self.catalog.statistics.get(primary).object_size)
        return row_count * width

    def _run_aggregate(self, node: Aggregate) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = {}
        for row in self._run(node.child):
            self._eval_charge()
            key = tuple(AttributeRef(k).evaluate(row) for k in node.group_by)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        for key, members in groups.items():
            result: Row = dict(zip(node.group_by, key))
            for spec in node.aggregates:
                result[spec.alias] = _aggregate_value(spec, members)
            yield result

    def _run_join(self, node: Join) -> Iterator[Row]:
        left_attr = node.left_attribute
        right_attr = node.right_attribute
        table: dict[Any, list[Row]] = {}
        for row in self._run(node.right):
            self._eval_charge()
            table.setdefault(right_attr.evaluate(row), []).append(row)
        for row in self._run(node.left):
            self._eval_charge()
            for match in table.get(left_attr.evaluate(row), ()):
                yield _merge_rows(row, match, node)

    def _run_bindjoin(self, node: BindJoin) -> Iterator[Row]:
        """Dependent join: outer first, then keyed probe batches at the
        inner wrapper (one request per batch of distinct join keys)."""
        wrapper = self.catalog.wrapper(node.wrapper)
        outer_rows = list(self._run(node.outer))
        keys: list[Any] = []
        seen: set[Any] = set()
        for row in outer_rows:
            self._eval_charge()
            key = node.outer_attribute.evaluate(row)
            if key is not None and key not in seen:
                seen.add(key)
                keys.append(key)
        inner_by_key: dict[Any, list[Row]] = {}
        inner_name = node.inner_attribute.name
        for start in range(0, len(keys), node.batch_size):
            batch = keys[start : start + node.batch_size]
            key_predicate = eq(inner_name, batch[0])
            for key in batch[1:]:
                key_predicate = Or(key_predicate, eq(inner_name, key))
            predicates = [key_predicate]
            if node.inner_filters is not None:
                predicates.append(node.inner_filters)
            subplan = Select(Scan(node.inner_collection), conjunction(predicates))
            self.clock.charge_message()  # ship the probe batch
            result: ExecutionResult = wrapper.execute(subplan)
            self.clock.advance(result.total_time_ms)
            payload = self._payload_bytes(subplan, len(result.rows))
            self.clock.charge_message(payload_bytes=payload)
            for row in result.rows:
                inner_by_key.setdefault(
                    AttributeRef(inner_name).evaluate(row), []
                ).append(row)
        outer_label = node.outer.primary_collection() or "outer"
        for row in outer_rows:
            self._eval_charge()
            key = node.outer_attribute.evaluate(row)
            for match in inner_by_key.get(key, ()):
                merged = dict(row)
                for name, value in match.items():
                    if name in merged and merged[name] != value:
                        merged[f"{outer_label}.{name}"] = merged.pop(name)
                        merged[f"{node.inner_collection}.{name}"] = value
                    else:
                        merged[name] = value
                yield merged
