"""The mediator-side execution engine (§2.2, Steps 4–6).

Executes the chosen plan: ``Submit`` nodes dispatch their subtree to the
owning wrapper (Step 4) and collect the subanswer (Step 5); the operators
above the submits — the *composition subquery* — run at the mediator over
in-memory rows.  All time is accounted on the mediator's simulated clock:
wrapper execution advances it by the wrapper's measured response time,
communication charges the configured per-message/per-byte costs, and
local operators charge per-row CPU.

Dispatch goes through a :class:`~repro.mediator.scheduler.
SubmitScheduler`.  By default it runs the paper's sequential model
(additive ``TotalTime``); with ``ExecutorOptions(parallel_submits=True)``
independent Submit subtrees — and the probe batches of a ``BindJoin`` —
are dispatched as concurrent waves whose wrapper waits overlap (see
``docs/execution.md``).  An optional subanswer cache memoizes identical
wrapper subqueries within and across queries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.algebra.expressions import AttributeRef, Or, conjunction, eq
from repro.algebra.logical import (
    Aggregate,
    BindJoin,
    Distinct,
    Join,
    PlanNode,
    Project,
    Scan,
    Scatter,
    Select,
    Sort,
    Submit,
    Union,
)
from repro.errors import PlanError, SubmitFailedError
from repro.mediator.backend import (
    MEDIATOR_PROFILE as MEDIATOR_PROFILE,  # historic home; re-exported
    ExecutionBackend,
    SimBackend,
)
from repro.mediator.cache import SubanswerCache
from repro.mediator.catalog import MediatorCatalog
from repro.mediator.resilience import (
    PARTIAL,
    PartialAnswer,
    ResilienceOptions,
    ResilienceStats,
    SubmitFailure,
    build_partial_answer,
)
from repro.mediator.scheduler import (
    DispatchOutcome,
    SubmitScheduler,
    estimate_payload_bytes,
)
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.sources.clock import SimClock
from repro.sources.pages import Row
from repro.wrappers.base import ExecutionResult
from repro.wrappers.interpreter import _aggregate_value, _merge_rows


@dataclass
class ExecutorOptions:
    """Execution-model knobs of the mediator engine.

    The defaults reproduce the paper's sequential, additive accounting
    exactly (the §2.3 numbers and all seed tests are unchanged).
    """

    #: Dispatch independent Submit subtrees (and BindJoin probe batches)
    #: as concurrent waves: the clock charges the max over the wave's
    #: wrapper times plus per-branch communication, instead of the sum.
    parallel_submits: bool = False
    #: Concurrency slots per wave; ``None`` means unbounded.
    max_concurrency: int | None = None
    #: Memoize identical wrapper subqueries (by plan fingerprint) within
    #: and across queries; hits skip wrapper execution entirely.
    cache_subanswers: bool = False
    #: Entry bound of the subanswer cache (FIFO eviction).
    cache_max_entries: int = 1024
    #: Fault-tolerance policies (retry/backoff/deadline, circuit
    #: breakers, strict-vs-partial failure mode).  ``None`` disables the
    #: layer entirely — dispatch follows the seed code path.
    resilience: ResilienceOptions | None = None
    #: Execution backend the engine runs on.  ``None`` builds the
    #: default simulated stack (:class:`~repro.mediator.backend.
    #: SimBackend`); pass a :class:`~repro.rt.backend.RealTimeBackend`
    #: for wall-clock thread-pool dispatch against real sources.
    #: Overrides any explicit ``clock`` handed to the executor.
    backend: ExecutionBackend | None = None


class MediatorExecutor:
    """Runs complete mediator plans."""

    def __init__(
        self,
        catalog: MediatorCatalog,
        clock: SimClock | None = None,
        options: ExecutorOptions | None = None,
        cache: SubanswerCache | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.catalog = catalog
        self.options = options if options is not None else ExecutorOptions()
        if backend is None:
            backend = self.options.backend
        if backend is None:
            # The seed stack: a simulated clock (the given one, or a
            # fresh mediator-profile clock) charged explicitly.
            backend = SimBackend(clock)
        self.backend = backend
        self.clock = backend.clock
        if cache is None and self.options.cache_subanswers:
            cache = SubanswerCache(max_entries=self.options.cache_max_entries)
        self.cache = cache
        self.scheduler = SubmitScheduler(
            catalog,
            max_concurrency=self.options.max_concurrency,
            cache=self.cache,
            resilience=self.options.resilience,
            backend=backend,
        )
        self._submit_log: list[tuple[Submit, ExecutionResult]] = []
        self._prefetched: dict[int, DispatchOutcome] = {}
        #: Submit failures of the current execution (partial mode only).
        self._failures: list[SubmitFailure] = []
        #: Telemetry sink; defaults to the shared no-op tracer.
        self.tracer: SpanTracer = NULL_TRACER
        self._trace_compose = False

    def set_tracer(self, tracer: SpanTracer, trace_compose: bool = True) -> None:
        """Install a span tracer on the executor and its scheduler."""
        self.tracer = tracer
        self.scheduler.tracer = tracer
        self._trace_compose = tracer.enabled and trace_compose

    @property
    def parallel_stats(self):
        """Cumulative wave accounting of the concurrent dispatcher."""
        return self.scheduler.parallel.stats

    @property
    def _partial_mode(self) -> bool:
        resilience = self.options.resilience
        return resilience is not None and resilience.mode == PARTIAL

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan; returns rows plus mediator-measured times."""
        self._submit_log = []
        self._prefetched = {}
        self._failures = []
        hits_before = self.cache.stats.hits if self.cache is not None else 0
        misses_before = self.cache.stats.misses if self.cache is not None else 0
        saved_before = self.scheduler.parallel.stats.saved_ms
        resilience_before = (
            self.scheduler.resilience_stats.copy()
            if self.options.resilience is not None
            else None
        )
        replication_before = (
            self.scheduler.replica_stats.copy()
            if self.catalog.has_replicas()
            else None
        )
        start = self.clock.now_ms
        if self.options.parallel_submits:
            self._prefetch_submits(plan)
        time_first: float | None = None
        rows: list[Row] = []
        for row in self._run(plan):
            if time_first is None:
                time_first = self.clock.elapsed_since(start)
            rows.append(row)
        total = self.clock.elapsed_since(start)
        return ExecutionResult(
            rows=rows,
            total_time_ms=total,
            # An empty answer still took the whole execution to discover:
            # its first-tuple time is the elapsed total, not zero (a zero
            # would understate TimeFirst below TotalTime).
            time_first_ms=time_first if time_first is not None else total,
            submit_log=list(self._submit_log),
            cache_hits=(
                self.cache.stats.hits - hits_before if self.cache is not None else 0
            ),
            cache_misses=(
                self.cache.stats.misses - misses_before
                if self.cache is not None
                else 0
            ),
            parallel_saved_ms=self.scheduler.parallel.stats.saved_ms - saved_before,
            partial=(
                build_partial_answer(plan, self._failures)
                if self._failures
                else None
            ),
            resilience=(
                self.scheduler.resilience_stats.minus(resilience_before)
                if resilience_before is not None
                else None
            ),
            replication=(
                self.scheduler.replica_stats.minus(replication_before)
                if replication_before is not None
                else None
            ),
        )

    def _prefetch_submits(self, plan: PlanNode) -> None:
        """Dispatch every Submit subtree of the plan as one wave.

        Distinct Submit subtrees never depend on each other (wrapper
        subqueries are self-contained; only BindJoin parameterizes its
        probes, and those are built at run time, not as plan Submits), so
        the whole set is one independent wave.
        """
        submits = [node for node in plan.walk() if isinstance(node, Submit)]
        if not submits:
            return
        outcomes = self.scheduler.dispatch_wave(submits)
        self._prefetched = {
            submit.node_id: outcome
            for submit, outcome in zip(submits, outcomes)
        }

    # -- operators ---------------------------------------------------------------

    def _eval_charge(self, rows: int = 1) -> None:
        self.clock.advance(self.clock.profile.cpu_ms_per_eval * rows)

    def _run(self, node: PlanNode) -> Iterator[Row]:
        """Dispatch one plan node, optionally wrapped in a compose span.

        The traced path adds one generator layer per node; the default
        returns the operator's iterator untouched, so disabled telemetry
        costs nothing per row.
        """
        if not self._trace_compose or isinstance(node, Submit):
            # Submit spans are emitted by the scheduler (which also sees
            # cache hits and waves); composition spans cover the rest.
            return self._run_node(node)
        return self._traced_run(node)

    def _traced_run(self, node: PlanNode) -> Iterator[Row]:
        tracer = self.tracer
        span = tracer.start(
            f"compose:{node.operator_name}",
            kind="compose",
            node=node.describe(),
            node_id=node.node_id,
        )
        rows = 0
        try:
            for row in self._run_node(node):
                rows += 1
                yield row
        finally:
            tracer.end(span, rows=rows)

    def _run_node(self, node: PlanNode) -> Iterator[Row]:
        if isinstance(node, Submit):
            yield from self._run_submit(node)
        elif isinstance(node, Scan):
            raise PlanError(
                f"scan({node.collection}) reached the mediator executor "
                "without a submit — plans must route scans through wrappers"
            )
        elif isinstance(node, Select):
            for row in self._run(node.child):
                self._eval_charge()
                if node.predicate.evaluate(row):
                    yield row
        elif isinstance(node, Project):
            for row in self._run(node.child):
                self._eval_charge()
                yield {
                    name: AttributeRef(node.source_of(name)).evaluate(row)
                    for name in node.attributes
                }
        elif isinstance(node, Sort):
            rows = list(self._run(node.child))
            self._eval_charge(len(rows))
            keyed = sorted(
                rows,
                key=lambda r: tuple(AttributeRef(k).evaluate(r) for k in node.keys),
                reverse=node.descending,
            )
            yield from keyed
        elif isinstance(node, Distinct):
            seen: set[tuple] = set()
            for row in self._run(node.child):
                self._eval_charge()
                fingerprint = tuple(sorted(row.items()))
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    yield row
        elif isinstance(node, Aggregate):
            yield from self._run_aggregate(node)
        elif isinstance(node, Join):
            yield from self._run_join(node)
        elif isinstance(node, BindJoin):
            yield from self._run_bindjoin(node)
        elif isinstance(node, Union):
            yield from self._run(node.left)
            yield from self._run(node.right)
        elif isinstance(node, Scatter):
            yield from self._run_scatter(node)
        else:
            raise PlanError(f"mediator cannot execute {node.operator_name!r}")

    def _register_failure(self, failure: SubmitFailure) -> None:
        """Strict mode raises; partial mode records the failure so the
        answer completes with the surviving subtrees and a structured
        :class:`~repro.mediator.resilience.PartialAnswer` report."""
        if not self._partial_mode:
            raise SubmitFailedError(failure)
        self._failures.append(failure)

    def _run_submit(self, node: Submit) -> Iterator[Row]:
        outcome = self._prefetched.pop(node.node_id, None)
        if outcome is None:
            outcome = self.scheduler.dispatch_one(node)
        if outcome.failed:
            assert outcome.failure is not None
            self._register_failure(outcome.failure)
            # Partial mode: the missing subtree contributes zero rows —
            # union branches above drop out, joins above prune to empty.
            return
        if not outcome.cached:
            # Logged at consumption (not dispatch) so the log order matches
            # the sequential executor's; cache hits are excluded — history
            # must only learn from real, measured executions.  The
            # outcome's submit (not the plan node) is logged: a failover
            # or won hedge rebinds it to the replica that actually served
            # the rows, while sharing the planned child subtree.
            self._submit_log.append((outcome.submit, outcome.result))
        yield from outcome.result.rows

    def _run_scatter(self, node: Scatter) -> Iterator[Row]:
        """Fan the shard submits out as one wave, gather in branch order.

        Scatter branches always dispatch concurrently — even under the
        sequential executor — because the fan-out is the operator's whole
        point; the parallel executor's global prefetch wave already
        covers them, in which case the stored outcomes are consumed here.
        Like Union, the gather itself charges nothing per row.  A failed
        shard is a dropped branch: strict mode raises, partial mode
        records it for the :class:`PartialAnswer`.
        """
        if self.tracer.enabled:
            self.tracer.event(
                "scatter",
                kind="scatter",
                collection=node.collection,
                shard_key=node.shard_key,
                node_id=node.node_id,
                branches=len(node.branches),
                total_shards=node.total_shards,
            )
        outcomes: list[DispatchOutcome]
        if all(branch.node_id in self._prefetched for branch in node.branches):
            outcomes = [
                self._prefetched.pop(branch.node_id) for branch in node.branches
            ]
        else:
            outcomes = self.scheduler.dispatch_wave(list(node.branches))
        for outcome in outcomes:
            if outcome.failed:
                assert outcome.failure is not None
                self._register_failure(outcome.failure)
                continue
            if not outcome.cached:
                self._submit_log.append((outcome.submit, outcome.result))
            yield from outcome.result.rows

    def _payload_bytes(self, subplan: PlanNode, row_count: int) -> int:
        """Approximate result-transfer size; projected subplans ship only
        the projected share of each object (see scheduler module)."""
        return estimate_payload_bytes(self.catalog.statistics, subplan, row_count)

    def _run_aggregate(self, node: Aggregate) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = {}
        for row in self._run(node.child):
            self._eval_charge()
            key = tuple(AttributeRef(k).evaluate(row) for k in node.group_by)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        for key, members in groups.items():
            result: Row = dict(zip(node.group_by, key))
            for spec in node.aggregates:
                result[spec.alias] = _aggregate_value(spec, members)
            yield result

    def _run_join(self, node: Join) -> Iterator[Row]:
        left_attr = node.left_attribute
        right_attr = node.right_attribute
        table: dict[Any, list[Row]] = {}
        for row in self._run(node.right):
            self._eval_charge()
            table.setdefault(right_attr.evaluate(row), []).append(row)
        for row in self._run(node.left):
            self._eval_charge()
            for match in table.get(left_attr.evaluate(row), ()):
                yield _merge_rows(row, match, node)

    def _run_bindjoin(self, node: BindJoin) -> Iterator[Row]:
        """Dependent join: outer first, then keyed probe batches at the
        inner wrapper (one request per batch of distinct join keys)."""
        outer_rows = list(self._run(node.outer))
        keys: list[Any] = []
        seen: set[Any] = set()
        for row in outer_rows:
            self._eval_charge()
            key = node.outer_attribute.evaluate(row)
            if key is not None and key not in seen:
                seen.add(key)
                keys.append(key)
        inner_name = node.inner_attribute.name
        probes: list[Submit] = []
        for start in range(0, len(keys), node.batch_size):
            batch = keys[start : start + node.batch_size]
            key_predicate = eq(inner_name, batch[0])
            for key in batch[1:]:
                key_predicate = Or(key_predicate, eq(inner_name, key))
            predicates = [key_predicate]
            if node.inner_filters is not None:
                predicates.append(node.inner_filters)
            subplan = Select(Scan(node.inner_collection), conjunction(predicates))
            probes.append(Submit(subplan, node.wrapper))
        # The probe batches are mutually independent: one wave when the
        # executor is parallel, one dispatch each otherwise.
        if self.options.parallel_submits and len(probes) > 1:
            outcomes = self.scheduler.dispatch_wave(probes)
        else:
            outcomes = [self.scheduler.dispatch_one(probe) for probe in probes]
        inner_by_key: dict[Any, list[Row]] = {}
        for outcome in outcomes:
            if outcome.failed:
                assert outcome.failure is not None
                # Probe submits are synthesized at run time, so their
                # node ids are not in the plan; report the failure under
                # the BindJoin's identity (a failed probe prunes the
                # dependent join for that key batch).
                self._register_failure(
                    replace(
                        outcome.failure,
                        node_id=node.node_id,
                        collection=node.inner_collection,
                        bindjoin_probe=True,
                    )
                )
                continue
            if not outcome.cached:
                # Probe batches feed the §4.3.1 history like any other
                # dispatched subquery.
                self._submit_log.append((outcome.submit, outcome.result))
            for row in outcome.result.rows:
                inner_by_key.setdefault(
                    AttributeRef(inner_name).evaluate(row), []
                ).append(row)
        outer_label = node.outer.primary_collection() or "outer"
        for row in outer_rows:
            self._eval_charge()
            key = node.outer_attribute.evaluate(row)
            for match in inner_by_key.get(key, ()):
                merged = dict(row)
                for name, value in match.items():
                    if name in merged and merged[name] != value:
                        merged[f"{outer_label}.{name}"] = merged.pop(name)
                        merged[f"{node.inner_collection}.{name}"] = value
                    else:
                        merged[name] = value
                yield merged
