"""Concurrent dispatch of wrapper subqueries.

The sequential execution model (the seed executor, matching the paper's
additive ``TotalTime`` formulas) ships one subquery, waits for the full
wrapper response time, ships the next.  But independent ``Submit``
subtrees — the children of ``Join``/``Union`` access plans, and the probe
batches of a ``BindJoin`` — have no data dependencies between them: a
mediator that dispatches them concurrently waits only for the slowest
branch per concurrency slot (FedQPL's explicit *multiway* operators over
federation members model exactly this).

:class:`SubmitScheduler` implements both modes over the mediator's
simulated clock:

* :meth:`dispatch_one` — the sequential model: request message + full
  wrapper wait + response message, per subquery;
* :meth:`dispatch_wave` — the concurrent model: request/response
  messages stay serialized (one mediator network interface) but the
  wrapper waits overlap, charged as the wave's list-scheduled makespan
  through :class:`~repro.sources.clock.ParallelClock`.

Both paths consult an optional :class:`~repro.mediator.cache.
SubanswerCache`: a hit skips wrapper execution and communication
entirely and charges zero time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.logical import PlanNode, Project, Submit
from repro.core.statistics import StatisticsCatalog
from repro.mediator.cache import CacheEntry, SubanswerCache
from repro.mediator.catalog import MediatorCatalog
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.sources.clock import ParallelClock, SimClock, WaveStats
from repro.wrappers.base import ExecutionResult


def estimate_payload_bytes(
    statistics: StatisticsCatalog, subplan: PlanNode, row_count: int
) -> int:
    """Approximate result-transfer size of one wrapper subanswer.

    Width starts from the average object size of the subplan's primary
    collection (100 bytes when unknown).  When the subplan projects a
    narrow attribute list, only the projected share of the object is
    shipped: per-attribute width is derived from the statistics as
    ``object_size / attribute count`` (no finer per-attribute width is
    exported, §3.2), so a 2-of-8-attribute projection ships a quarter of
    the object.
    """
    width = 100.0
    stats = None
    primary = subplan.primary_collection()
    if primary is not None and primary in statistics:
        stats = statistics.get(primary)
        width = float(max(1, stats.object_size))
    projection = next(
        (node for node in subplan.walk() if isinstance(node, Project)), None
    )
    if projection is not None and stats is not None and stats.attributes:
        fraction = min(1.0, len(projection.attributes) / len(stats.attributes))
        width = max(1.0, width * fraction)
    return int(row_count * width)


@dataclass
class DispatchOutcome:
    """One dispatched (or cache-served) subquery."""

    submit: Submit
    result: ExecutionResult
    #: True when the subanswer came from the cache — no wrapper execution
    #: happened and nothing should be recorded in the submit log.
    cached: bool = False


class SubmitScheduler:
    """Dispatches Submit nodes to wrappers on the mediator's clock."""

    def __init__(
        self,
        catalog: MediatorCatalog,
        clock: SimClock,
        max_concurrency: int | None = None,
        cache: SubanswerCache | None = None,
    ) -> None:
        self.catalog = catalog
        self.clock = clock
        self.cache = cache
        self.parallel = ParallelClock(clock, max_concurrency)
        self.last_wave: WaveStats | None = None
        #: Telemetry sink; the shared null tracer keeps every span site a
        #: constant-time no-op until the mediator injects a real one.
        self.tracer: SpanTracer = NULL_TRACER

    # -- cache plumbing -----------------------------------------------------

    def _cached_outcome(self, submit: Submit) -> DispatchOutcome | None:
        if self.cache is None:
            return None
        entry: CacheEntry | None = self.cache.lookup(submit.wrapper, submit.child)
        if self.tracer.enabled:
            self.tracer.event(
                "cache.hit" if entry is not None else "cache.miss",
                kind="cache",
                wrapper=submit.wrapper,
                subquery=submit.child.describe(),
            )
        if entry is None:
            return None
        # Copies keep cached subanswers immutable under downstream row
        # merging and client-side mutation.
        rows = [dict(row) for row in entry.rows]
        return DispatchOutcome(
            submit=submit,
            result=ExecutionResult(rows=rows, total_time_ms=0.0, time_first_ms=0.0),
            cached=True,
        )

    def _store(self, submit: Submit, result: ExecutionResult) -> None:
        if self.cache is not None:
            # Store copies: the caller's rows flow on to clients who may
            # mutate them in place.
            rows = [dict(row) for row in result.rows]
            self.cache.store(
                submit.wrapper, submit.child, rows, result.total_time_ms
            )

    # -- sequential dispatch ----------------------------------------------------

    def dispatch_one(self, submit: Submit) -> DispatchOutcome:
        """The additive model: the mediator waits for the whole wrapper."""
        cached = self._cached_outcome(submit)
        if cached is not None:
            return cached
        tracer = self.tracer
        span = (
            tracer.start(
                f"submit:{submit.wrapper}",
                kind="submit",
                wrapper=submit.wrapper,
                subquery=submit.child.describe(),
            )
            if tracer.enabled
            else None
        )
        wrapper = self.catalog.wrapper(submit.wrapper)
        self.clock.charge_message()  # ship the subquery
        result: ExecutionResult = wrapper.execute(submit.child)
        self.clock.advance(result.total_time_ms)
        payload = estimate_payload_bytes(
            self.catalog.statistics, submit.child, len(result.rows)
        )
        self.clock.charge_message(payload_bytes=payload)
        self._store(submit, result)
        if span is not None:
            attrs = {
                "rows": len(result.rows),
                "wrapper_ms": result.total_time_ms,
                "payload_bytes": payload,
            }
            if result.device_stats:
                attrs.update(result.device_stats)
            tracer.end(span, **attrs)
        return DispatchOutcome(submit=submit, result=result)

    # -- concurrent dispatch -----------------------------------------------------

    def dispatch_wave(self, submits: "list[Submit]") -> "list[DispatchOutcome]":
        """Dispatch independent subqueries as one concurrent wave.

        Wrapper waits are charged as the wave's makespan (max over
        branches, under the concurrency cap); request and response
        messages remain serialized per-branch charges.  Branches execute
        in input order, so results — and the wrapper engines' own clocks —
        stay deterministic.
        """
        tracer = self.tracer
        wave_span = (
            tracer.start("wave", kind="wave", branches=len(submits))
            if tracer.enabled
            else None
        )
        outcomes: list[DispatchOutcome] = []
        self.parallel.begin_wave()
        for submit in submits:
            # Within-wave duplicates hit the cache too: earlier branches
            # store their subanswer before later ones look it up.
            cached = self._cached_outcome(submit)
            if cached is not None:
                outcomes.append(cached)
                continue
            branch_span = (
                tracer.start(
                    f"submit:{submit.wrapper}",
                    kind="submit",
                    wrapper=submit.wrapper,
                    subquery=submit.child.describe(),
                )
                if tracer.enabled
                else None
            )
            wrapper = self.catalog.wrapper(submit.wrapper)
            self.parallel.charge_message()  # ship the subquery
            result = wrapper.execute(submit.child)
            self.parallel.charge_branch(result.total_time_ms)
            self._store(submit, result)
            if branch_span is not None:
                # The branch overlaps its siblings: the mediator clock only
                # advances at commit, so wrapper_ms carries the wait that a
                # zero-length simulated span cannot show.
                attrs = {"rows": len(result.rows), "wrapper_ms": result.total_time_ms}
                if result.device_stats:
                    attrs.update(result.device_stats)
                tracer.end(branch_span, **attrs)
            outcomes.append(DispatchOutcome(submit=submit, result=result))
        self.last_wave = self.parallel.commit_wave()
        for outcome in outcomes:
            if outcome.cached:
                continue
            payload = estimate_payload_bytes(
                self.catalog.statistics,
                outcome.submit.child,
                len(outcome.result.rows),
            )
            self.parallel.charge_message(payload_bytes=payload)
        if wave_span is not None:
            tracer.end(
                wave_span,
                makespan_ms=self.last_wave.makespan_ms,
                sequential_ms=self.last_wave.sequential_ms,
                saved_ms=self.last_wave.saved_ms,
                cached_branches=sum(1 for o in outcomes if o.cached),
            )
        return outcomes
