"""Concurrent dispatch of wrapper subqueries.

The sequential execution model (the seed executor, matching the paper's
additive ``TotalTime`` formulas) ships one subquery, waits for the full
wrapper response time, ships the next.  But independent ``Submit``
subtrees — the children of ``Join``/``Union`` access plans, and the probe
batches of a ``BindJoin`` — have no data dependencies between them: a
mediator that dispatches them concurrently waits only for the slowest
branch per concurrency slot (FedQPL's explicit *multiway* operators over
federation members model exactly this).

:class:`SubmitScheduler` implements both modes over an
:class:`~repro.mediator.backend.ExecutionBackend` (the simulated seed
stack by default; wall-clock thread-pool dispatch with ``repro.rt``):

* :meth:`dispatch_one` — the sequential model: request message + full
  wrapper wait + response message, per subquery;
* :meth:`dispatch_wave` — the concurrent model: request/response
  messages stay serialized (one mediator network interface) but the
  wrapper waits overlap, charged as the wave's list-scheduled makespan
  through :class:`~repro.sources.clock.ParallelClock`.

Both paths consult an optional :class:`~repro.mediator.cache.
SubanswerCache`: a hit skips wrapper execution and communication
entirely and charges zero time.  A cache hit is served *before* the
fault-tolerance layer runs — it bypasses retry budget and circuit
breakers alike, because the memoized rows came from a past successful
execution and serving them during an outage is exactly the point.

With a :class:`~repro.mediator.resilience.ResilienceOptions` installed,
both dispatch paths run each wrapper execution under the retry policy
(bounded attempts, exponential backoff charged on the simulated clock, a
per-submit deadline that cancels a wrapper wait mid-flight) behind a
per-wrapper circuit breaker.  A submit that exhausts its budget returns
a *failed* :class:`DispatchOutcome` — the executor decides whether that
raises (``strict``) or degrades the answer (``partial``).  Failed
attempts are never stored in the cache and never appear in the submit
log (history must only learn from real, successful measurements).

When the catalog carries **replica sets**, two further behaviors arm
(both entirely inert otherwise — the no-replica dispatch path stays byte
for byte the seed path):

* **failover** — a submit that exhausts its retry budget (or fast-fails
  on an open breaker) re-dispatches against the next-cheapest healthy
  replica instead of failing, rebinding the outcome's Submit to the
  rescuing wrapper so the submit log and drift join record where the
  rows actually came from; the attempt chain lands in the span tree and
  in :attr:`SubmitFailure.replicas_tried` when every member fails;
* **hedged submits** — with an opt-in :class:`~repro.mediator.
  resilience.HedgePolicy`, a wrapper wait that overruns the hedge
  threshold launches one backup submit at the cheapest healthy replica;
  the first result wins and only the winner's duration is charged — the
  loser's unconsumed remainder is recorded as cancelled hedge work, not
  mediator time.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.algebra.logical import PlanNode, Project, Submit
from repro.core.statistics import StatisticsCatalog
from repro.mediator.backend import ExecutionBackend, SimBackend
from repro.mediator.cache import CacheEntry, SubanswerCache
from repro.mediator.catalog import MediatorCatalog
from repro.mediator.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ReplicaStats,
    ResilienceOptions,
    ResilienceStats,
    SubmitFailure,
)
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.sources.clock import SimClock, WaveStats
from repro.wrappers.base import ExecutionResult


def estimate_payload_bytes(
    statistics: StatisticsCatalog, subplan: PlanNode, row_count: int
) -> int:
    """Approximate result-transfer size of one wrapper subanswer.

    Width starts from the average object size of the subplan's primary
    collection (100 bytes when unknown).  When the subplan projects a
    narrow attribute list, only the projected share of the object is
    shipped: per-attribute width is derived from the statistics as
    ``object_size / attribute count`` (no finer per-attribute width is
    exported, §3.2), so a 2-of-8-attribute projection ships a quarter of
    the object.
    """
    width = 100.0
    stats = None
    primary = subplan.primary_collection()
    if primary is not None and primary in statistics:
        stats = statistics.get(primary)
        width = float(max(1, stats.object_size))
    projection = next(
        (node for node in subplan.walk() if isinstance(node, Project)), None
    )
    if projection is not None and stats is not None and stats.attributes:
        fraction = min(1.0, len(projection.attributes) / len(stats.attributes))
        width = max(1.0, width * fraction)
    return int(row_count * width)


@dataclass
class DispatchOutcome:
    """One dispatched (or cache-served, or failed) subquery."""

    submit: Submit
    result: ExecutionResult
    #: True when the subanswer came from the cache — no wrapper execution
    #: happened and nothing should be recorded in the submit log.
    cached: bool = False
    #: Wrapper executions this outcome took (1 on the seed path; >1 when
    #: a retry succeeded; 0 when the breaker fast-failed the submit).
    attempts: int = 1
    #: Set when the submit exhausted its retry budget (or fast-failed);
    #: ``result`` is then an empty placeholder and must not be consumed
    #: as a real subanswer.
    failure: SubmitFailure | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None


class SubmitScheduler:
    """Dispatches Submit nodes to wrappers on the backend's clock."""

    def __init__(
        self,
        catalog: MediatorCatalog,
        clock: SimClock | None = None,
        max_concurrency: int | None = None,
        cache: SubanswerCache | None = None,
        resilience: ResilienceOptions | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.catalog = catalog
        #: The time-and-dispatch seam.  ``backend`` wins when given;
        #: otherwise the seed sim stack is built around ``clock``.
        self.backend = backend if backend is not None else SimBackend(clock)
        self.clock = self.backend.clock
        self.cache = cache
        self.parallel = self.backend.attach_waves(max_concurrency)
        self.last_wave: WaveStats | None = None
        #: Fault-tolerance policies; ``None`` keeps the seed dispatch
        #: path byte for byte.
        self.resilience = resilience
        #: Per-wrapper circuit breakers, created lazily on first dispatch.
        self.breakers: dict[str, CircuitBreaker] = {}
        #: Lifetime fault-handling counters (executor snapshots deltas).
        self.resilience_stats = ResilienceStats()
        #: Lifetime replica-dispatch counters (selected/failover/hedge).
        self.replica_stats = ReplicaStats()
        #: Cost-based replica ordering, injected by the mediator:
        #: ``(submit, candidates) -> candidates ordered cheapest first``.
        #: ``None`` falls back to catalog order (primary first).
        self.replica_ranker: (
            Callable[[Submit, tuple[str, ...]], Sequence[str]] | None
        ) = None
        #: Recent successful wrapper latencies, kept only while a hedge
        #: policy is armed (drives the percentile trigger).
        self._latency_history: dict[str, deque[float]] = {}
        #: Monotonic resilient-dispatch counter; part of the per-submit
        #: jitter seed so same-wave retries against one wrapper don't
        #: thunder-herd on identical backoff schedules.
        self._dispatch_seq = 0
        #: Telemetry sink; the shared null tracer keeps every span site a
        #: constant-time no-op until the mediator injects a real one.
        self.tracer: SpanTracer = NULL_TRACER

    # -- cache plumbing -----------------------------------------------------

    def _cached_outcome(self, submit: Submit) -> DispatchOutcome | None:
        if self.cache is None:
            return None
        entry: CacheEntry | None = self.cache.lookup(submit.wrapper, submit.child)
        if self.tracer.enabled:
            self.tracer.event(
                "cache.hit" if entry is not None else "cache.miss",
                kind="cache",
                wrapper=submit.wrapper,
                subquery=submit.child.describe(),
            )
        if entry is None:
            return None
        # Copies keep cached subanswers immutable under downstream row
        # merging and client-side mutation.
        rows = [dict(row) for row in entry.rows]
        return DispatchOutcome(
            submit=submit,
            result=ExecutionResult(rows=rows, total_time_ms=0.0, time_first_ms=0.0),
            cached=True,
        )

    def _store(self, submit: Submit, result: ExecutionResult) -> None:
        if self.cache is not None:
            # Store copies: the caller's rows flow on to clients who may
            # mutate them in place.
            rows = [dict(row) for row in result.rows]
            self.cache.store(
                submit.wrapper, submit.child, rows, result.total_time_ms
            )

    # -- circuit breakers ---------------------------------------------------

    def _breaker(self, wrapper: str) -> CircuitBreaker | None:
        if self.resilience is None or self.resilience.breaker is None:
            return None
        breaker = self.breakers.get(wrapper)
        if breaker is None:
            breaker = self.breakers[wrapper] = CircuitBreaker(
                self.resilience.breaker
            )
        return breaker

    def open_breaker_wrappers(self) -> list[str]:
        """Wrappers whose breaker is currently not closed (degraded mode)."""
        return sorted(
            name for name, breaker in self.breakers.items() if breaker.state != CLOSED
        )

    # -- replicas -----------------------------------------------------------

    def _breaker_blocked(self, wrapper: str) -> bool:
        """Would a dispatch to this wrapper fast-fail right now?"""
        breaker = self.breakers.get(wrapper)
        if breaker is None:
            return False
        if breaker.state == OPEN:
            assert breaker.opened_at_ms is not None
            return (
                self.clock.now_ms - breaker.opened_at_ms
                < breaker.policy.cooldown_ms
            )
        if breaker.state == HALF_OPEN:
            return breaker._probe_in_flight
        return False

    def _replica_candidates(
        self, submit: Submit, exclude: Sequence[str]
    ) -> list[str]:
        """Healthy replica members to try for a submit, cheapest first
        (via the injected ranker; catalog order otherwise)."""
        members = self.catalog.replica_members(submit.wrapper)
        candidates = [
            member
            for member in members
            if member not in exclude and not self._breaker_blocked(member)
        ]
        if len(candidates) > 1 and self.replica_ranker is not None:
            candidates = list(self.replica_ranker(submit, tuple(candidates)))
        return candidates

    def _rebound(self, submit: Submit, wrapper: str) -> Submit:
        """The same submit re-targeted at a replica.  The child subtree is
        *shared*, not cloned: downstream consumers (drift, profile) join
        on ``child.node_id``, which must keep naming the planned node."""
        return Submit(
            submit.child, wrapper, shard=submit.shard, shard_of=submit.shard_of
        )

    # -- fault-tolerant attempt loop -----------------------------------------

    def _failed_outcome(
        self, submit: Submit, failure: SubmitFailure
    ) -> DispatchOutcome:
        return DispatchOutcome(
            submit=submit,
            result=ExecutionResult(rows=[], total_time_ms=0.0, time_first_ms=0.0),
            attempts=failure.attempts,
            failure=failure,
        )

    def _resilient_execute(self, submit: Submit, charges) -> DispatchOutcome:
        """Run one submit under the retry policy behind its breaker.

        Charges request messages per attempt plus the simulated waits
        (wrapper time, failure latency, backoff, cancelled remainders)
        through the ``charges`` strategy; the *response* message of a
        successful outcome is the caller's job (it differs between the
        sequential and wave paths).
        """
        options = self.resilience
        assert options is not None
        policy = options.retry
        stats = self.resilience_stats
        tracer = self.tracer
        name = submit.wrapper
        collection = submit.child.primary_collection()
        self._dispatch_seq += 1
        dispatch_seq = self._dispatch_seq
        breaker = self._breaker(name)
        if breaker is not None and not breaker.allow(self.clock.now_ms):
            stats._inc(stats.breaker_fast_fails, name)
            if tracer.enabled:
                tracer.event("breaker.fast_fail", kind="breaker", wrapper=name)
            return self._failed_outcome(
                submit,
                SubmitFailure(
                    wrapper=name,
                    subquery=submit.child.describe(),
                    node_id=submit.node_id,
                    collection=collection,
                    reason="circuit_open",
                    attempts=0,
                ),
            )
        wrapper = self.catalog.wrapper(name)
        deadline = policy.deadline_ms
        waited = 0.0
        attempts = 0
        reason = "transient"
        while attempts < policy.max_attempts:
            attempts += 1
            charges.message()  # ship the subquery (again, on a retry)
            attempt = self.backend.measured_execute(
                wrapper,
                submit.child,
                budget_ms=(
                    None if deadline is None else max(0.0, deadline - waited)
                ),
            )
            result = attempt.result
            wait = attempt.duration_ms
            error_reason = attempt.error
            if deadline is not None and waited + wait > deadline:
                # The deadline fires mid-wait: cancel the wrapper wait,
                # charge only the remaining budget, discard any rows.
                remaining = max(0.0, deadline - waited)
                charges.idle_wait(remaining)
                stats.cancelled_wait_ms += wait - remaining
                waited = deadline
                stats._inc(stats.timeouts, name)
                reason = "timeout"
                if tracer.enabled:
                    tracer.event(
                        "submit.timeout",
                        kind="retry",
                        wrapper=name,
                        attempt=attempts,
                        cancelled_ms=wait - remaining,
                    )
                if breaker is not None and breaker.record_failure(self.clock.now_ms):
                    stats._inc(stats.breaker_trips, name)
                    if tracer.enabled:
                        tracer.event("breaker.open", kind="breaker", wrapper=name)
                break  # the wait budget is gone: no attempt can fit
            if error_reason is None:
                assert result is not None
                hedged = self._maybe_hedge(
                    submit, wait, result, attempts, charges, breaker
                )
                if hedged is not None:
                    return hedged
                charges.wrapper_wait(wait)
                if breaker is not None:
                    breaker.record_success()
                if attempts > 1:
                    # Retried submits carry fault latency in their wall
                    # story; mark the (clean-attempt) result so the
                    # calibration window can skip it.
                    result = replace(result, fault_tainted=True)
                return DispatchOutcome(
                    submit=submit, result=result, attempts=attempts
                )
            charges.wrapper_wait(wait)
            waited += wait
            reason = error_reason
            stats._inc(stats.attempt_errors, name)
            if breaker is not None:
                if breaker.record_failure(self.clock.now_ms):
                    stats._inc(stats.breaker_trips, name)
                    if tracer.enabled:
                        tracer.event("breaker.open", kind="breaker", wrapper=name)
                if breaker.state == OPEN:
                    # A tripped breaker stops the loop: a dead source
                    # must not burn the remaining retry budget.
                    break
            if attempts < policy.max_attempts:
                backoff = policy.backoff_ms(
                    attempts, self._jitter_rng(name, dispatch_seq, attempts)
                )
                if deadline is not None:
                    backoff = min(backoff, deadline - waited)
                if backoff > 0:
                    charges.idle_wait(backoff)
                    stats.backoff_ms += backoff
                    waited += backoff
                stats._inc(stats.retries, name)
                if tracer.enabled:
                    tracer.event(
                        "retry",
                        kind="retry",
                        wrapper=name,
                        attempt=attempts + 1,
                        backoff_ms=backoff,
                        reason=error_reason,
                    )
        stats._inc(stats.failed_submits, name)
        return self._failed_outcome(
            submit,
            SubmitFailure(
                wrapper=name,
                subquery=submit.child.describe(),
                node_id=submit.node_id,
                collection=collection,
                reason=reason,
                attempts=attempts,
            ),
        )

    def _jitter_rng(self, wrapper: str, dispatch_seq: int, attempt: int) -> random.Random:
        """A fresh deterministic RNG per backoff draw, seeded from
        (options seed, wrapper, submit dispatch sequence, attempt index).
        String seeds hash stably across processes, and distinct submits
        retrying against the same wrapper de-synchronize instead of
        thunder-herding on one shared schedule."""
        assert self.resilience is not None
        return random.Random(
            f"{self.resilience.seed}:{wrapper}:{dispatch_seq}:{attempt}"
        )

    # -- hedged submits -----------------------------------------------------

    def _maybe_hedge(
        self,
        submit: Submit,
        wait: float,
        result: ExecutionResult,
        attempts: int,
        charges,
        breaker: CircuitBreaker | None,
    ) -> DispatchOutcome | None:
        """Race a straggling (but ultimately successful) primary wait
        against one backup replica.  Returns the finished outcome when a
        hedge ran — with only the *winner's* duration charged — or None
        when hedging is off/inapplicable (the caller then charges the
        primary wait exactly as before)."""
        options = self.resilience
        policy = options.hedge if options is not None else None
        if policy is None or not self.catalog.has_replicas():
            return None
        name = submit.wrapper
        if len(self.catalog.replica_members(name)) == 1:
            return None
        history = self._latency_history.get(name)
        if history is None:
            history = self._latency_history[name] = deque(maxlen=policy.window)
        threshold = policy.threshold_ms(list(history))
        history.append(wait)
        if wait <= threshold:
            return None
        candidates = self._replica_candidates(submit, exclude=(name,))
        if not candidates:
            return None
        backup_name = candidates[0]
        rstats = self.replica_stats
        stats = self.resilience_stats
        tracer = self.tracer
        rstats._inc(rstats.hedges_launched, backup_name)
        charges.message()  # the backup subquery ships too
        if tracer.enabled:
            tracer.event(
                "hedge.launch",
                kind="hedge",
                wrapper=name,
                backup=backup_name,
                threshold_ms=threshold,
                primary_ms=wait,
            )
        backup_breaker = self._breaker(backup_name)
        backup_wrapper = self.catalog.wrapper(backup_name)
        backup = self.backend.measured_execute(backup_wrapper, submit.child)
        backup_result = backup.result
        backup_wait = backup.duration_ms
        if backup_result is not None and threshold + backup_wait < wait:
            # Backup wins: the mediator waited threshold (for the hedge
            # to fire) plus the backup's service time; the primary's
            # still-outstanding remainder is cancelled, never charged.
            winner_ms = threshold + backup_wait
            charges.wrapper_wait(winner_ms)
            rstats._inc(rstats.hedges_won, backup_name)
            rstats.hedge_cancelled_ms += wait - winner_ms
            if backup_breaker is not None:
                backup_breaker.record_success()
            if breaker is not None:
                breaker.record_success()  # the primary did answer, late
            if tracer.enabled:
                tracer.event(
                    "hedge.won",
                    kind="hedge",
                    wrapper=name,
                    backup=backup_name,
                    winner_ms=winner_ms,
                    cancelled_ms=wait - winner_ms,
                )
            return DispatchOutcome(
                submit=self._rebound(submit, backup_name),
                result=replace(backup_result, fault_tainted=True),
                attempts=attempts,
            )
        # Primary wins (or the backup faulted): charge the primary wait
        # as usual; all backup work happened on the losing timeline.
        charges.wrapper_wait(wait)
        rstats.hedge_cancelled_ms += backup_wait
        if backup_result is None:
            if backup_breaker is not None and backup_breaker.record_failure(
                self.clock.now_ms
            ):
                stats._inc(stats.breaker_trips, backup_name)
        if breaker is not None:
            breaker.record_success()
        if attempts > 1:
            result = replace(result, fault_tainted=True)
        return DispatchOutcome(submit=submit, result=result, attempts=attempts)

    # -- failover -----------------------------------------------------------

    def _dispatch_with_failover(self, submit: Submit, charges) -> DispatchOutcome:
        """Resilient dispatch plus replica failover.

        Without replica sets this is exactly :meth:`_resilient_execute`.
        With them, a failed submit walks the remaining healthy members
        cheapest-first; a rescue rebinds the outcome's Submit to the
        serving wrapper (sharing the planned child subtree, so drift and
        profile joins keep working).  When every member fails, the plan
        submit's failure is returned with the full attempt chain in
        ``replicas_tried``.
        """
        outcome = self._resilient_execute(submit, charges)
        if not self.catalog.has_replicas():
            return outcome
        if len(self.catalog.replica_members(submit.wrapper)) == 1:
            return outcome
        rstats = self.replica_stats
        if not outcome.failed:
            rstats._inc(rstats.selected, outcome.submit.wrapper)
            return outcome
        tracer = self.tracer
        tried = [submit.wrapper]
        assert outcome.failure is not None
        first_failure = outcome.failure
        total_attempts = outcome.attempts
        while True:
            candidates = self._replica_candidates(submit, exclude=tried)
            if not candidates:
                break
            candidate = candidates[0]
            if tracer.enabled:
                tracer.event(
                    "failover.try",
                    kind="failover",
                    wrapper=submit.wrapper,
                    to=candidate,
                    reason=first_failure.reason,
                )
            alt = self._resilient_execute(self._rebound(submit, candidate), charges)
            tried.append(candidate)
            total_attempts += alt.attempts
            if not alt.failed:
                rstats._inc(rstats.selected, candidate)
                rstats._inc(rstats.failovers, candidate)
                if tracer.enabled:
                    tracer.event(
                        "failover.rescued",
                        kind="failover",
                        wrapper=submit.wrapper,
                        to=candidate,
                        attempts=total_attempts,
                    )
                return DispatchOutcome(
                    submit=alt.submit,
                    result=replace(alt.result, fault_tainted=True),
                    attempts=total_attempts,
                )
        failure = replace(
            first_failure,
            attempts=total_attempts,
            replicas_tried=tuple(tried),
        )
        if tracer.enabled and len(tried) > 1:
            tracer.event(
                "failover.exhausted",
                kind="failover",
                wrapper=submit.wrapper,
                replicas_tried=",".join(tried),
            )
        return self._failed_outcome(submit, failure)

    # -- sequential dispatch ----------------------------------------------------

    def dispatch_one(self, submit: Submit) -> DispatchOutcome:
        """The additive model: the mediator waits for the whole wrapper."""
        cached = self._cached_outcome(submit)
        if cached is not None:
            return cached
        tracer = self.tracer
        span = (
            tracer.start(
                f"submit:{submit.wrapper}",
                kind="submit",
                **self._submit_open_attrs(submit),
            )
            if tracer.enabled
            else None
        )
        charges = self.backend.sequential_charges()
        if self.resilience is not None:
            outcome = self._dispatch_with_failover(submit, charges)
            if not outcome.failed:
                payload = estimate_payload_bytes(
                    self.catalog.statistics, submit.child, len(outcome.result.rows)
                )
                charges.message(payload_bytes=payload)
                self._store(outcome.submit, outcome.result)
            if span is not None:
                tracer.end(span, **self._span_attrs(outcome))
            return outcome
        wrapper = self.catalog.wrapper(submit.wrapper)
        charges.message()  # ship the subquery
        attempt = self.backend.measured_execute(wrapper, submit.child)
        result: ExecutionResult = attempt.reraise()
        charges.wrapper_wait(attempt.duration_ms)
        payload = estimate_payload_bytes(
            self.catalog.statistics, submit.child, len(result.rows)
        )
        charges.message(payload_bytes=payload)
        self._store(submit, result)
        if span is not None:
            attrs = {
                "rows": len(result.rows),
                "wrapper_ms": result.total_time_ms,
                "payload_bytes": payload,
            }
            if result.device_stats:
                attrs.update(result.device_stats)
            tracer.end(span, **attrs)
        return DispatchOutcome(submit=submit, result=result)

    @staticmethod
    def _submit_open_attrs(submit: Submit) -> dict:
        """Attributes a submit span opens with: enough identity to join
        it back to the estimated plan (node ids) and, for scatter
        branches, to the shard it targets."""
        attrs: dict = {
            "wrapper": submit.wrapper,
            "subquery": submit.child.describe(),
            "node_id": submit.node_id,
            "child_node_id": submit.child.node_id,
        }
        if submit.shard is not None:
            attrs["shard"] = submit.shard
            attrs["shard_of"] = submit.shard_of
        return attrs

    @staticmethod
    def _span_attrs(outcome: DispatchOutcome) -> dict:
        """Submit-span attributes of a resilience-layer outcome."""
        attrs: dict = {
            "attempts": outcome.attempts,
            "outcome": "failed" if outcome.failed else "ok",
        }
        if outcome.failed:
            assert outcome.failure is not None
            attrs["reason"] = outcome.failure.reason
            if outcome.failure.replicas_tried:
                attrs["replicas_tried"] = ",".join(outcome.failure.replicas_tried)
        else:
            attrs["served_by"] = outcome.submit.wrapper
            attrs["rows"] = len(outcome.result.rows)
            attrs["wrapper_ms"] = outcome.result.total_time_ms
            if outcome.result.device_stats:
                attrs.update(outcome.result.device_stats)
        return attrs

    # -- concurrent dispatch -----------------------------------------------------

    def dispatch_wave(self, submits: "list[Submit]") -> "list[DispatchOutcome]":
        """Dispatch independent subqueries as one concurrent wave.

        Wrapper waits are charged as the wave's makespan (max over
        branches, under the concurrency cap); request and response
        messages remain serialized per-branch charges.  The backend runs
        the branches: the sim backend executes them in input order (so
        results — and the wrapper engines' own clocks — stay
        deterministic), the real backend fans them out on its thread
        pool; either way outcomes return in input order.
        """
        tracer = self.tracer
        wave_span = (
            tracer.start("wave", kind="wave", branches=len(submits))
            if tracer.enabled
            else None
        )
        self.parallel.begin_wave()
        outcomes: list[DispatchOutcome] = self.backend.run_wave(
            [self._wave_branch(submit) for submit in submits]
        )
        self.last_wave = self.parallel.commit_wave()
        for outcome in outcomes:
            if outcome.cached or outcome.failed:
                # Cache hits shipped nothing; failed submits have no
                # subanswer, so there is no response message to charge.
                continue
            payload = estimate_payload_bytes(
                self.catalog.statistics,
                outcome.submit.child,
                len(outcome.result.rows),
            )
            self.parallel.charge_message(payload_bytes=payload)
        if wave_span is not None:
            tracer.end(
                wave_span,
                makespan_ms=self.last_wave.makespan_ms,
                sequential_ms=self.last_wave.sequential_ms,
                saved_ms=self.last_wave.saved_ms,
                cached_branches=sum(1 for o in outcomes if o.cached),
                failed_branches=sum(1 for o in outcomes if o.failed),
            )
        return outcomes

    def _wave_branch(self, submit: Submit) -> Callable[[], DispatchOutcome]:
        """One wave branch as a thunk the backend can run in-order (sim)
        or on a pool thread (real)."""

        def branch() -> DispatchOutcome:
            tracer = self.tracer
            # Within-wave duplicates hit the cache too: on the sim
            # backend earlier branches store their subanswer before
            # later ones look it up (in-order execution); on the real
            # backend concurrent duplicates race and may both execute.
            cached = self._cached_outcome(submit)
            if cached is not None:
                return cached
            branch_span = (
                tracer.start(
                    f"submit:{submit.wrapper}",
                    kind="submit",
                    **self._submit_open_attrs(submit),
                )
                if tracer.enabled
                else None
            )
            if self.resilience is not None:
                charges = self.backend.wave_charges(self.parallel)
                outcome = self._dispatch_with_failover(submit, charges)
                self.parallel.charge_branch(charges.branch_ms)
                if not outcome.failed:
                    self._store(outcome.submit, outcome.result)
                if branch_span is not None:
                    tracer.end(branch_span, **self._span_attrs(outcome))
                return outcome
            wrapper = self.catalog.wrapper(submit.wrapper)
            self.parallel.charge_message()  # ship the subquery
            attempt = self.backend.measured_execute(wrapper, submit.child)
            result = attempt.reraise()
            self.parallel.charge_branch(attempt.duration_ms)
            self._store(submit, result)
            if branch_span is not None:
                # The branch overlaps its siblings: the mediator clock only
                # advances at commit, so wrapper_ms carries the wait that a
                # zero-length simulated span cannot show.
                attrs = {"rows": len(result.rows), "wrapper_ms": result.total_time_ms}
                if result.device_stats:
                    attrs.update(result.device_stats)
                tracer.end(branch_span, **attrs)
            return DispatchOutcome(submit=submit, result=result)

        return branch
