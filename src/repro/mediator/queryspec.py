"""Normalized query representation consumed by the optimizer.

The SQL front end (and tests/examples directly) produce a
:class:`QuerySpec`: the conjunctive-normal-form core of a query —
collections, per-collection filters, cross-collection equi-joins — plus
the decorations (projection, distinct, grouping, ordering) applied above
the join tree.  The optimizer enumerates plans from this shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.algebra.expressions import Comparison, Predicate
from repro.algebra.logical import AggregateSpec
from repro.errors import QueryError


@dataclass
class QuerySpec:
    """One declarative query in optimizer-ready form."""

    collections: list[str]
    #: Single-collection conjuncts, keyed by collection.
    filters: dict[str, list[Predicate]] = field(default_factory=dict)
    #: Cross-collection equi-join comparisons; both sides must carry a
    #: collection qualifier.
    joins: list[Comparison] = field(default_factory=list)
    #: Output attribute names (None = everything).
    projection: list[str] | None = None
    #: Output name -> source attribute, for aliased columns (SELECT x AS y).
    projection_renames: dict[str, str] = field(default_factory=dict)
    distinct: bool = False
    group_by: list[str] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    order_descending: bool = False

    def __post_init__(self) -> None:
        if not self.collections:
            raise QueryError("a query needs at least one collection")
        if len(set(self.collections)) != len(self.collections):
            raise QueryError(
                "duplicate collections in one query are not supported "
                "(self-joins need aliases, which this subset omits)"
            )
        for collection in self.filters:
            if collection not in self.collections:
                raise QueryError(
                    f"filter on {collection!r} which is not in FROM"
                )
        for join in self.joins:
            if not join.is_attr_attr:
                raise QueryError(f"join predicate {join} must compare attributes")
            left, right = join.left, join.right
            if left.collection is None or right.collection is None:  # type: ignore[union-attr]
                raise QueryError(
                    f"join predicate {join} must qualify both attributes"
                )

    def filters_for(self, collection: str) -> list[Predicate]:
        return self.filters.get(collection, [])

    def joins_between(
        self, left_group: set[str], right_group: set[str]
    ) -> list[Comparison]:
        """Join predicates connecting two disjoint collection groups,
        oriented left-to-right."""
        connecting: list[Comparison] = []
        for join in self.joins:
            left_col = join.left.collection  # type: ignore[union-attr]
            right_col = join.right.collection  # type: ignore[union-attr]
            if left_col in left_group and right_col in right_group:
                connecting.append(join)
            elif right_col in left_group and left_col in right_group:
                connecting.append(join.flipped())
        return connecting

    def joins_within(self, group: set[str]) -> list[Comparison]:
        """Join predicates fully inside one collection group."""
        return [
            join
            for join in self.joins
            if join.left.collection in group  # type: ignore[union-attr]
            and join.right.collection in group  # type: ignore[union-attr]
        ]

    @property
    def is_single_collection(self) -> bool:
        return len(self.collections) == 1

    def output_columns(self) -> list[str] | None:
        """The statically known output column names, or None for ``*``."""
        if self.aggregates or self.group_by:
            return list(self.group_by) + [a.alias for a in self.aggregates]
        return None if self.projection is None else list(self.projection)


@dataclass
class UnionSpec:
    """``query UNION [ALL] query`` over union-compatible branches.

    Compatibility is checked by output column names, so every branch must
    have a statically known output (an explicit projection or aggregate
    list — ``SELECT *`` branches cannot be verified and are rejected).
    """

    branches: list[QuerySpec]
    distinct: bool = True

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise QueryError("a union needs at least two branches")
        first = self.branches[0].output_columns()
        if first is None:
            raise QueryError(
                "union branches must list their output columns explicitly "
                "(SELECT * cannot be checked for union compatibility)"
            )
        for branch in self.branches[1:]:
            columns = branch.output_columns()
            if columns != first:
                raise QueryError(
                    f"union branches are not compatible: {first} vs {columns}"
                )


# ---------------------------------------------------------------------------
# Normalization and fingerprinting (the plan-cache identity)
# ---------------------------------------------------------------------------


def normalized(spec: QuerySpec) -> QuerySpec:
    """A canonical, semantically equal form of one :class:`QuerySpec`.

    Two specs that differ only in presentation order — ``FROM a, b`` vs
    ``FROM b, a``, reordered conjuncts, flipped equi-join sides — map to
    the same normalized spec:

    * collections sorted;
    * per-collection filter conjuncts sorted by their rendered text;
    * join comparisons oriented so the lexicographically smaller
      ``collection.attribute`` side is on the left, then sorted.

    Output-shaping clauses (projection, ``DISTINCT``, grouping, ordering)
    are preserved verbatim: their order is *semantic* (it names the output
    columns and sort keys), so it is part of the identity, not noise.
    """
    ordered_filters = {
        collection: sorted(spec.filters[collection], key=str)
        for collection in sorted(spec.filters)
        if spec.filters[collection]
    }
    joins: list[Comparison] = []
    for join in spec.joins:
        left = (join.left.collection, join.left.name)  # type: ignore[union-attr]
        right = (join.right.collection, join.right.name)  # type: ignore[union-attr]
        joins.append(join.flipped() if right < left else join)
    return replace(
        spec,
        collections=sorted(spec.collections),
        filters=ordered_filters,
        joins=sorted(joins, key=str),
    )


def _describe_spec(spec: QuerySpec) -> str:
    """Deterministic one-line rendering of a *normalized* spec."""
    parts = [
        "from=" + ",".join(spec.collections),
        "where="
        + "&".join(
            f"{collection}:{predicate}"
            for collection in spec.filters
            for predicate in spec.filters[collection]
        ),
        "join=" + "&".join(str(join) for join in spec.joins),
        "select="
        + ("*" if spec.projection is None else ",".join(spec.projection)),
        "rename="
        + ",".join(
            f"{alias}<{source}"
            for alias, source in sorted(spec.projection_renames.items())
        ),
        f"distinct={spec.distinct}",
        "group=" + ",".join(spec.group_by),
        "agg="
        + ",".join(
            f"{agg.function}({agg.attribute or '*'})>{agg.alias}"
            for agg in spec.aggregates
        ),
        "order=" + ",".join(spec.order_by),
        f"desc={spec.order_descending}",
    ]
    return ";".join(parts)


def spec_fingerprint(query: "QuerySpec | UnionSpec") -> str:
    """A stable identity for a query: equal for any two specs whose
    :func:`normalized` forms coincide.

    This is the key of the serving layer's plan cache (paired with the
    :attr:`~repro.mediator.catalog.MediatorCatalog.version` the plan was
    optimized under), and it is what lets ``Mediator`` front ends skip
    re-parsing and re-optimizing a byte-identical — or merely
    order-shuffled — query.  The digest is a hex SHA-256 prefix: long
    enough that collisions are not a practical concern, short enough to
    read in logs and explain output.
    """
    if isinstance(query, UnionSpec):
        canonical = (
            f"union(distinct={query.distinct})|"
            + "|".join(_describe_spec(normalized(b)) for b in query.branches)
        )
    else:
        canonical = _describe_spec(normalized(query))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]
