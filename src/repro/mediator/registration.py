"""The registration phase (§2.1, Figure 1).

"During the registration phase, mediators contact wrappers and upload all
the information required to use the wrapper, including cost information."
For each wrapper this module:

1. pulls its :class:`~repro.wrappers.base.CostInfoExport` (Step 2),
2. compiles the CDL document (the §2.4 code-shipping step — compilation
   happens once here, never during query processing),
3. stores schema and statistics in the mediator catalog,
4. integrates the cost rules into the rule repository at their derived
   scopes, and registers wrapper variables/functions with the estimator.

Re-registration (the administrative interface §2.1 envisions "when the
cost formulas are improved ... or the statistics become out of date")
first removes everything the wrapper previously exported.
"""

from __future__ import annotations

from repro.core.estimator import CostEstimator, SourceEnvironment
from repro.core.scopes import RuleRepository
from repro.errors import RegistrationError
from repro.mediator.catalog import MediatorCatalog
from repro.wrappers.base import Wrapper


def register_wrapper(
    wrapper: Wrapper,
    catalog: MediatorCatalog,
    repository: RuleRepository,
    estimator: CostEstimator,
) -> int:
    """Run the registration phase for one wrapper.

    Returns the number of cost rules integrated.  Raises
    :class:`RegistrationError` if the wrapper's export fails to compile.
    """
    try:
        export = wrapper.export_cost_info()
        compiled = export.compiled()
    except Exception as exc:
        raise RegistrationError(
            f"wrapper {wrapper.name!r} export failed: {exc}"
        ) from exc

    # Re-registration: drop everything the wrapper exported before.
    if wrapper.name in catalog.wrapper_names():
        catalog.remove_wrapper(wrapper.name)
        repository.remove_source(wrapper.name)

    catalog.add_wrapper(wrapper)
    stats_by_name = {stats.name: stats for stats in compiled.statistics}
    for collection in export.collection_names():
        stats = stats_by_name.get(collection)
        attributes: tuple[str, ...] = ()
        if collection in compiled.schema:
            attributes = tuple(compiled.schema[collection].attribute_names())
        if not attributes and stats is not None:
            attributes = tuple(stats.attributes)
        if not attributes:
            # Last resort: peek at the wrapper engine's rows (a mediator
            # administrator would configure this by hand).
            engine = getattr(wrapper, "engine", None)
            if engine is not None and collection in engine.collection_names():
                rows = engine.collection(collection).rows
                if rows:
                    attributes = tuple(rows[0].keys())
        catalog.add_collection(collection, wrapper.name, attributes, stats)

    repository.add_wrapper_rules(wrapper.name, compiled.rules)
    estimator.invalidate_cache()
    estimator.register_environment(
        SourceEnvironment(
            name=wrapper.name,
            variables=dict(compiled.variables),
            functions=dict(compiled.functions),
        )
    )
    return len(compiled.rules)
