"""The registration phase (§2.1, Figure 1).

"During the registration phase, mediators contact wrappers and upload all
the information required to use the wrapper, including cost information."
For each wrapper this module:

1. pulls its :class:`~repro.wrappers.base.CostInfoExport` (Step 2),
2. compiles the CDL document (the §2.4 code-shipping step — compilation
   happens once here, never during query processing),
3. stores schema and statistics in the mediator catalog,
4. integrates the cost rules into the rule repository at their derived
   scopes, and registers wrapper variables/functions with the estimator.

Re-registration (the administrative interface §2.1 envisions "when the
cost formulas are improved ... or the statistics become out of date")
first removes everything the wrapper previously exported.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.estimator import CostEstimator, SourceEnvironment
from repro.core.scopes import RuleRepository
from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import RegistrationError
from repro.mediator.catalog import MediatorCatalog, PartitionScheme
from repro.wrappers.base import Wrapper


def register_wrapper(
    wrapper: Wrapper,
    catalog: MediatorCatalog,
    repository: RuleRepository,
    estimator: CostEstimator,
) -> int:
    """Run the registration phase for one wrapper.

    Returns the number of cost rules integrated.  Raises
    :class:`RegistrationError` if the wrapper's export fails to compile.
    """
    try:
        export = wrapper.export_cost_info()
        compiled = export.compiled()
    except Exception as exc:
        raise RegistrationError(
            f"wrapper {wrapper.name!r} export failed: {exc}"
        ) from exc

    # Re-registration: drop everything the wrapper exported before.
    if wrapper.name in catalog.wrapper_names():
        catalog.remove_wrapper(wrapper.name)
        repository.remove_source(wrapper.name)

    catalog.add_wrapper(wrapper)
    stats_by_name = {stats.name: stats for stats in compiled.statistics}
    for collection in export.collection_names():
        stats = stats_by_name.get(collection)
        attributes: tuple[str, ...] = ()
        if collection in compiled.schema:
            attributes = tuple(compiled.schema[collection].attribute_names())
        if not attributes and stats is not None:
            attributes = tuple(stats.attributes)
        if not attributes:
            # Last resort: peek at the wrapper engine's rows (a mediator
            # administrator would configure this by hand).
            engine = getattr(wrapper, "engine", None)
            if engine is not None and collection in engine.collection_names():
                rows = engine.collection(collection).rows
                if rows:
                    attributes = tuple(rows[0].keys())
        catalog.add_collection(collection, wrapper.name, attributes, stats)

    repository.add_wrapper_rules(wrapper.name, compiled.rules)
    estimator.invalidate_cache()
    estimator.register_environment(
        SourceEnvironment(
            name=wrapper.name,
            variables=dict(compiled.variables),
            functions=dict(compiled.functions),
        )
    )
    return len(compiled.rules)


def register_replica(
    wrapper: Wrapper,
    of: str,
    catalog: MediatorCatalog,
    repository: RuleRepository,
    estimator: CostEstimator,
) -> int:
    """Register a wrapper as a replica of an already-registered primary.

    The replica runs the normal §2.1 upload — compiled cost rules under
    its own source scope, variables/functions as its own estimator
    environment — but does **not** claim collections: the primary owns
    the collection namespace and its statistics stay canonical.  The
    replica must actually serve every collection the primary does (it is
    interchangeable at dispatch time) and is validated against the
    primary's engine-visible collections.

    Returns the number of cost rules integrated.  Bumps the catalog
    version (via ``add_wrapper`` + ``add_replica``) so replica-blind
    cached plans evict.
    """
    primary = catalog.wrapper(of)
    try:
        export = wrapper.export_cost_info()
        compiled = export.compiled()
    except Exception as exc:
        raise RegistrationError(
            f"replica {wrapper.name!r} export failed: {exc}"
        ) from exc
    if wrapper.name in catalog.wrapper_names():
        raise RegistrationError(
            f"wrapper {wrapper.name!r} is already registered; replicas "
            "register once, via register_replica"
        )
    served = set(export.collection_names())
    missing = [
        name for name in primary.collection_names() if name not in served
    ]
    if missing:
        raise RegistrationError(
            f"replica {wrapper.name!r} does not serve {missing} exported "
            f"by primary {of!r}; replicas must be interchangeable"
        )

    catalog.add_wrapper(wrapper)
    catalog.add_replica(of, wrapper.name)
    repository.add_wrapper_rules(wrapper.name, compiled.rules)
    estimator.invalidate_cache()
    estimator.register_environment(
        SourceEnvironment(
            name=wrapper.name,
            variables=dict(compiled.variables),
            functions=dict(compiled.functions),
        )
    )
    return len(compiled.rules)


def register_partitioned_collection(
    scheme: PartitionScheme,
    catalog: MediatorCatalog,
    estimator: CostEstimator | None = None,
) -> CollectionStats | None:
    """Register a partition scheme plus aggregated logical statistics.

    Every shard's wrapper and physical collection must already be
    registered (the normal §2.1 flow runs first, shard by shard).  The
    logical collection gets statistics synthesized from the per-shard
    exports — counts and sizes sum; the shard key's distinct count sums
    (shards hold disjoint key sets) while other attributes keep the
    maximum; Min/Max widen to the union of the shard ranges — so the
    generic cost model prices the logical collection as one extent.

    Returns the aggregated statistics (``None`` when some shard exported
    no statistics).  Bumps the catalog version via
    :meth:`MediatorCatalog.add_partition`, invalidating cached plans.
    """
    for shard in scheme.shards:
        if shard.collection not in catalog:
            raise RegistrationError(
                f"shard collection {shard.collection!r} is not registered; "
                "register the shard wrappers before the partition scheme"
            )
    attributes: list[str] = []
    for shard in scheme.shards:
        for attribute in catalog.attributes_of(shard.collection):
            if attribute not in attributes:
                attributes.append(attribute)
    shard_stats = [
        catalog.statistics.get(shard.collection)
        for shard in scheme.shards
        if shard.collection in catalog.statistics
    ]
    aggregated: CollectionStats | None = None
    if len(shard_stats) == len(scheme.shards):
        aggregated = _aggregate_shard_stats(scheme, shard_stats)
    catalog.add_partition(scheme, tuple(attributes), aggregated)
    if estimator is not None:
        estimator.invalidate_cache()
    return aggregated


def _aggregate_shard_stats(
    scheme: PartitionScheme, shard_stats: list[CollectionStats]
) -> CollectionStats:
    if len(shard_stats) == 1:
        # 1-shard schemes (including the overlay layout used by the
        # equivalence suite) keep the physical statistics verbatim.
        return replace(shard_stats[0], name=scheme.collection)
    count_object = sum(stats.count_object for stats in shard_stats)
    total_size = sum(stats.total_size for stats in shard_stats)
    object_size = round(total_size / count_object) if count_object else 0
    names: list[str] = []
    for stats in shard_stats:
        for name in stats.attributes:
            if name not in names:
                names.append(name)
    merged: dict[str, AttributeStats] = {}
    for name in names:
        per_shard = [
            stats.attributes[name]
            for stats in shard_stats
            if name in stats.attributes
        ]
        distinct: int | None = None
        if all(attr.count_distinct is not None for attr in per_shard):
            counts = [attr.count_distinct for attr in per_shard]
            # Shards partition the key domain, so distinct shard-key
            # values are disjoint and sum; any other attribute may repeat
            # across shards — the max is a sound lower bound.
            distinct = sum(counts) if name == scheme.shard_key else max(counts)
        mins = [attr.min_value for attr in per_shard if attr.min_value is not None]
        maxs = [attr.max_value for attr in per_shard if attr.max_value is not None]
        merged[name] = AttributeStats(
            name=name,
            indexed=all(attr.indexed for attr in per_shard),
            count_distinct=distinct,
            min_value=(
                min(mins, key=lambda c: c.as_number())
                if len(mins) == len(per_shard)
                else None
            ),
            max_value=(
                max(maxs, key=lambda c: c.as_number())
                if len(maxs) == len(per_shard)
                else None
            ),
        )
    return CollectionStats(
        name=scheme.collection,
        count_object=count_object,
        total_size=total_size,
        object_size=object_size,
        attributes=merged,
    )
