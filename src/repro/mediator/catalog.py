"""The mediator catalog (§2.1).

"Schema and cost information are stored in the mediator catalog."  The
catalog remembers, per registered wrapper: which collections it serves,
its capabilities, and its exported statistics; plus the attribute lists
needed to resolve unqualified names in queries.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.statistics import CollectionStats, StatisticsCatalog
from repro.errors import UnknownAttributeError, UnknownCollectionError
from repro.mediator.calibration import (
    CalibrationOverlay,
    CalibrationState,
    CoefficientKey,
    CoefficientUpdate,
)
from repro.wrappers.base import Wrapper

#: Sentinel "wrapper" name carried by the logical entry of a partitioned
#: collection that has no physical collection of its own.  Never a real
#: wrapper — the optimizer routes partitioned collections through the
#: scatter access path before any wrapper lookup happens.
PARTITIONED_WRAPPER = "<partitioned>"


@dataclass
class CollectionEntry:
    """What the catalog knows about one collection."""

    name: str
    wrapper: str
    attributes: tuple[str, ...] = ()
    has_statistics: bool = False


@dataclass(frozen=True)
class Shard:
    """One physical fragment of a partitioned collection."""

    #: Physical collection name the shard's wrapper serves.
    collection: str
    #: Wrapper instance holding the fragment.
    wrapper: str


@dataclass(frozen=True)
class PartitionScheme:
    """Hash or range partitioning of one logical collection over N shards.

    ``kind="hash"`` routes a shard-key value to ``shard_index(value)``;
    only equality predicates on the shard key prune.  ``kind="range"``
    splits the key domain at ``boundaries`` (ascending; ``len(shards)-1``
    values; shard *i* holds ``boundaries[i-1] <= v < boundaries[i]``), so
    both equality and range predicates prune.
    """

    collection: str
    shard_key: str
    shards: tuple[Shard, ...]
    kind: str = "hash"
    boundaries: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError(f"partition of {self.collection!r} needs >= 1 shard")
        if self.kind not in ("hash", "range"):
            raise ValueError(f"unknown partition kind {self.kind!r}")
        if self.kind == "range":
            if len(self.boundaries) != len(self.shards) - 1:
                raise ValueError(
                    f"range partition of {self.collection!r} needs "
                    f"{len(self.shards) - 1} boundaries, got {len(self.boundaries)}"
                )
            if list(self.boundaries) != sorted(self.boundaries):
                raise ValueError("range boundaries must be ascending")
        elif self.boundaries:
            raise ValueError("hash partitions take no boundaries")
        names = [shard.collection for shard in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard collections in {names}")

    def shard_index(self, value: Any) -> int:
        """The shard owning a shard-key value.

        Hashing is deterministic across processes (builtin ``hash`` is
        salted per run): integers route by modulo, everything else by
        CRC-32 of the string form.
        """
        n = len(self.shards)
        if self.kind == "range":
            return bisect.bisect_right(list(self.boundaries), value)
        if isinstance(value, bool) or not isinstance(value, int):
            return zlib.crc32(str(value).encode("utf-8")) % n
        return value % n

    def shards_for_equality(self, value: Any) -> tuple[int, ...]:
        """Shard indices that may hold rows with ``shard_key == value``."""
        return (self.shard_index(value),)

    def shards_for_range(
        self, low: Any | None, high: Any | None
    ) -> tuple[int, ...]:
        """Shard indices overlapping ``low <= shard_key <= high``.

        Conservative (never drops a shard that could match); open bounds
        are ``None``.  Hash partitioning cannot prune ranges: all shards.
        """
        if self.kind != "range":
            return tuple(range(len(self.shards)))
        lo = 0 if low is None else self.shard_index(low)
        hi = len(self.shards) - 1 if high is None else self.shard_index(high)
        return tuple(range(lo, hi + 1))


@dataclass
class MediatorCatalog:
    """Registered wrappers and the global collection namespace."""

    statistics: StatisticsCatalog = field(default_factory=StatisticsCatalog)
    _wrappers: dict[str, Wrapper] = field(default_factory=dict)
    _collections: dict[str, CollectionEntry] = field(default_factory=dict)
    _partitions: dict[str, PartitionScheme] = field(default_factory=dict)
    #: Monotonic change counter, bumped on every mutation that can alter
    #: what the optimizer would choose (wrapper/collection membership,
    #: statistics, calibration overlays).  Plan caches key on it: a
    #: cached plan is only valid while the catalog version it was
    #: optimized under is current.
    version: int = 0
    #: Versioned online-calibration overlay history (§4.3 feedback loop).
    calibration: CalibrationState = field(default_factory=CalibrationState)
    #: Replica sets: primary wrapper name -> ordered replica wrapper names.
    _replicas: dict[str, list[str]] = field(default_factory=dict)
    #: Reverse map: replica member name -> its primary.
    _replica_primary: dict[str, str] = field(default_factory=dict)

    # -- calibration -------------------------------------------------------------

    def apply_calibration(
        self,
        updates: "dict[CoefficientKey, float] | list[CoefficientUpdate]",
        note: str = "",
        observations: int = 0,
    ) -> CalibrationOverlay:
        """Install a new calibration overlay version.

        Bumps :attr:`version`: every cached plan was costed under the
        previous coefficients and is now stale.
        """
        overlay = self.calibration.apply(
            updates, note=note, observations=observations
        )
        self.version += 1
        return overlay

    def rollback_calibration(self, version: int) -> CalibrationOverlay:
        """Re-activate a prior overlay version (0 = identity/seed).

        Bumps :attr:`version` for the same staleness reason as apply.
        """
        overlay = self.calibration.rollback(version)
        self.version += 1
        return overlay

    # -- wrappers ---------------------------------------------------------------

    def add_wrapper(self, wrapper: Wrapper) -> None:
        self.version += 1
        self._wrappers[wrapper.name] = wrapper

    def wrapper(self, name: str) -> Wrapper:
        try:
            return self._wrappers[name]
        except KeyError:
            raise UnknownCollectionError(f"no wrapper named {name!r}") from None

    def wrapper_names(self) -> list[str]:
        return sorted(self._wrappers)

    def remove_wrapper(self, name: str) -> None:
        self.version += 1
        self._wrappers.pop(name, None)
        for collection in [
            c for c, e in self._collections.items() if e.wrapper == name
        ]:
            del self._collections[collection]
            self.statistics.remove(collection)
        # A partition scheme losing any shard's wrapper is gone wholesale:
        # a scatter over a missing shard could never be planned.
        for logical in [
            c
            for c, scheme in self._partitions.items()
            if any(shard.wrapper == name for shard in scheme.shards)
        ]:
            del self._partitions[logical]
            entry = self._collections.get(logical)
            if entry is not None and entry.wrapper == PARTITIONED_WRAPPER:
                del self._collections[logical]
                self.statistics.remove(logical)
        # Replica bookkeeping: a removed replica leaves its set; a removed
        # primary dissolves the whole set (the replicas stay registered as
        # plain wrappers but no longer serve the primary's collections).
        primary = self._replica_primary.pop(name, None)
        if primary is not None and primary in self._replicas:
            self._replicas[primary] = [
                r for r in self._replicas[primary] if r != name
            ]
            if not self._replicas[primary]:
                del self._replicas[primary]
        replicas = self._replicas.pop(name, None)
        if replicas is not None:
            for replica in replicas:
                self._replica_primary.pop(replica, None)

    # -- replicas ---------------------------------------------------------------

    def add_replica(self, primary: str, replica: str) -> None:
        """Attach a registered wrapper as a replica of ``primary``.

        Both names must already be registered wrappers.  Bumps
        :attr:`version`: replica-blind cached plans are stale.
        """
        if primary not in self._wrappers:
            raise UnknownCollectionError(
                f"replica primary {primary!r} is not registered"
            )
        if replica not in self._wrappers:
            raise UnknownCollectionError(
                f"replica wrapper {replica!r} is not registered"
            )
        if replica == primary:
            raise UnknownCollectionError(
                f"wrapper {primary!r} cannot replicate itself"
            )
        if primary in self._replica_primary:
            raise UnknownCollectionError(
                f"{primary!r} is itself a replica of "
                f"{self._replica_primary[primary]!r}; replica sets do not nest"
            )
        if replica in self._replica_primary or replica in self._replicas:
            raise UnknownCollectionError(
                f"wrapper {replica!r} is already part of a replica set"
            )
        self.version += 1
        self._replicas.setdefault(primary, []).append(replica)
        self._replica_primary[replica] = primary

    def has_replicas(self) -> bool:
        """True when any replica set exists (the fast gate: every replica
        code path stands down entirely when this is False)."""
        return bool(self._replicas)

    def replicas_of(self, wrapper: str) -> tuple[str, ...]:
        """Replica members attached to ``wrapper`` (empty when none)."""
        return tuple(self._replicas.get(wrapper, ()))

    def replica_members(self, wrapper: str) -> tuple[str, ...]:
        """The full replica set a wrapper belongs to, primary first.

        A wrapper outside any replica set is its own 1-member set.
        """
        primary = self._replica_primary.get(wrapper, wrapper)
        replicas = self._replicas.get(primary)
        if not replicas:
            return (wrapper,)
        return (primary, *replicas)

    def replica_primary(self, wrapper: str) -> str:
        """The primary of a wrapper's replica set (itself when plain)."""
        return self._replica_primary.get(wrapper, wrapper)

    # -- collections --------------------------------------------------------------

    def add_collection(
        self,
        name: str,
        wrapper: str,
        attributes: tuple[str, ...] = (),
        stats: CollectionStats | None = None,
    ) -> None:
        if name in self._collections and self._collections[name].wrapper != wrapper:
            raise UnknownCollectionError(
                f"collection {name!r} already registered by wrapper "
                f"{self._collections[name].wrapper!r}"
            )
        self.version += 1
        self._collections[name] = CollectionEntry(
            name=name,
            wrapper=wrapper,
            attributes=attributes,
            has_statistics=stats is not None,
        )
        if stats is not None:
            self.statistics.put(stats)

    # -- partitions ---------------------------------------------------------------

    def add_partition(
        self,
        scheme: PartitionScheme,
        attributes: tuple[str, ...] = (),
        stats: CollectionStats | None = None,
    ) -> None:
        """Register a partition scheme for a logical collection.

        Every shard's physical collection must already be registered to
        the wrapper the scheme names.  When the logical name is not
        itself a physical collection (the usual S>1 layout), a logical
        :class:`CollectionEntry` is created under the
        :data:`PARTITIONED_WRAPPER` sentinel so name resolution and
        statistics lookups work; when it *is* one (a 1-shard overlay),
        the existing physical entry is left untouched.

        Bumps :attr:`version` — cached plans against the unsharded
        layout are stale.
        """
        for shard in scheme.shards:
            if shard.wrapper not in self._wrappers:
                raise UnknownCollectionError(
                    f"shard wrapper {shard.wrapper!r} is not registered"
                )
            shard_entry = self._collections.get(shard.collection)
            if shard_entry is None or shard_entry.wrapper != shard.wrapper:
                raise UnknownCollectionError(
                    f"shard collection {shard.collection!r} is not registered "
                    f"by wrapper {shard.wrapper!r}"
                )
        self.version += 1
        self._partitions[scheme.collection] = scheme
        if scheme.collection not in self._collections:
            self._collections[scheme.collection] = CollectionEntry(
                name=scheme.collection,
                wrapper=PARTITIONED_WRAPPER,
                attributes=attributes,
                has_statistics=stats is not None,
            )
        if stats is not None:
            self.statistics.put(stats)

    def remove_partition(self, collection: str) -> None:
        scheme = self._partitions.pop(collection, None)
        if scheme is None:
            return
        self.version += 1
        entry = self._collections.get(collection)
        if entry is not None and entry.wrapper == PARTITIONED_WRAPPER:
            del self._collections[collection]
            self.statistics.remove(collection)

    def is_partitioned(self, collection: str) -> bool:
        return collection in self._partitions

    def partition(self, collection: str) -> PartitionScheme:
        try:
            return self._partitions[collection]
        except KeyError:
            raise UnknownCollectionError(
                f"collection {collection!r} is not partitioned"
            ) from None

    def partitioned_collections(self) -> list[str]:
        return sorted(self._partitions)

    def entry(self, collection: str) -> CollectionEntry:
        try:
            return self._collections[collection]
        except KeyError:
            raise UnknownCollectionError(
                f"unknown collection {collection!r} "
                f"(known: {sorted(self._collections)})"
            ) from None

    def wrapper_for(self, collection: str) -> str:
        return self.entry(collection).wrapper

    def wrapper_of(self, collection: str) -> Wrapper:
        return self.wrapper(self.wrapper_for(collection))

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def __contains__(self, collection: str) -> bool:
        return collection in self._collections

    # -- name resolution ---------------------------------------------------------------

    def attributes_of(self, collection: str) -> tuple[str, ...]:
        entry = self.entry(collection)
        if entry.attributes:
            return entry.attributes
        if collection in self.statistics:
            return tuple(self.statistics.get(collection).attributes)
        return ()

    def resolve_attribute(
        self, attribute: str, collections: list[str]
    ) -> str:
        """Find which of ``collections`` owns an unqualified attribute.

        Raises if the attribute is ambiguous or unknown.  Collections with
        no attribute information match nothing (queries against them must
        qualify names).
        """
        owners = [
            collection
            for collection in collections
            if attribute in self.attributes_of(collection)
        ]
        if len(owners) == 1:
            return owners[0]
        if not owners:
            raise UnknownAttributeError(
                f"attribute {attribute!r} not found in any of {collections}"
            )
        raise UnknownAttributeError(
            f"attribute {attribute!r} is ambiguous across {owners}; qualify it"
        )

    def describe(self) -> str:
        """Human-readable catalog summary."""
        lines = []
        for name in self.collection_names():
            entry = self._collections[name]
            stats_note = "stats" if entry.has_statistics else "no stats"
            lines.append(
                f"{name} @ {entry.wrapper} ({stats_note}; "
                f"attrs: {', '.join(entry.attributes) or '?'})"
            )
        for name in self.partitioned_collections():
            scheme = self._partitions[name]
            lines.append(
                f"{name} partitioned by {scheme.kind}({scheme.shard_key}) "
                f"over {len(scheme.shards)} shards"
            )
        for primary in sorted(self._replicas):
            lines.append(
                f"{primary} replicated by {', '.join(self._replicas[primary])}"
            )
        return "\n".join(lines)
