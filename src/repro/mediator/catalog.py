"""The mediator catalog (§2.1).

"Schema and cost information are stored in the mediator catalog."  The
catalog remembers, per registered wrapper: which collections it serves,
its capabilities, and its exported statistics; plus the attribute lists
needed to resolve unqualified names in queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.statistics import CollectionStats, StatisticsCatalog
from repro.errors import UnknownAttributeError, UnknownCollectionError
from repro.wrappers.base import Wrapper


@dataclass
class CollectionEntry:
    """What the catalog knows about one collection."""

    name: str
    wrapper: str
    attributes: tuple[str, ...] = ()
    has_statistics: bool = False


@dataclass
class MediatorCatalog:
    """Registered wrappers and the global collection namespace."""

    statistics: StatisticsCatalog = field(default_factory=StatisticsCatalog)
    _wrappers: dict[str, Wrapper] = field(default_factory=dict)
    _collections: dict[str, CollectionEntry] = field(default_factory=dict)
    #: Monotonic change counter, bumped on every mutation that can alter
    #: what the optimizer would choose (wrapper/collection membership,
    #: statistics).  Plan caches key on it: a cached plan is only valid
    #: while the catalog version it was optimized under is current.
    version: int = 0

    # -- wrappers ---------------------------------------------------------------

    def add_wrapper(self, wrapper: Wrapper) -> None:
        self.version += 1
        self._wrappers[wrapper.name] = wrapper

    def wrapper(self, name: str) -> Wrapper:
        try:
            return self._wrappers[name]
        except KeyError:
            raise UnknownCollectionError(f"no wrapper named {name!r}") from None

    def wrapper_names(self) -> list[str]:
        return sorted(self._wrappers)

    def remove_wrapper(self, name: str) -> None:
        self.version += 1
        self._wrappers.pop(name, None)
        for collection in [
            c for c, e in self._collections.items() if e.wrapper == name
        ]:
            del self._collections[collection]
            self.statistics.remove(collection)

    # -- collections --------------------------------------------------------------

    def add_collection(
        self,
        name: str,
        wrapper: str,
        attributes: tuple[str, ...] = (),
        stats: CollectionStats | None = None,
    ) -> None:
        if name in self._collections and self._collections[name].wrapper != wrapper:
            raise UnknownCollectionError(
                f"collection {name!r} already registered by wrapper "
                f"{self._collections[name].wrapper!r}"
            )
        self.version += 1
        self._collections[name] = CollectionEntry(
            name=name,
            wrapper=wrapper,
            attributes=attributes,
            has_statistics=stats is not None,
        )
        if stats is not None:
            self.statistics.put(stats)

    def entry(self, collection: str) -> CollectionEntry:
        try:
            return self._collections[collection]
        except KeyError:
            raise UnknownCollectionError(
                f"unknown collection {collection!r} "
                f"(known: {sorted(self._collections)})"
            ) from None

    def wrapper_for(self, collection: str) -> str:
        return self.entry(collection).wrapper

    def wrapper_of(self, collection: str) -> Wrapper:
        return self.wrapper(self.wrapper_for(collection))

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def __contains__(self, collection: str) -> bool:
        return collection in self._collections

    # -- name resolution ---------------------------------------------------------------

    def attributes_of(self, collection: str) -> tuple[str, ...]:
        entry = self.entry(collection)
        if entry.attributes:
            return entry.attributes
        if collection in self.statistics:
            return tuple(self.statistics.get(collection).attributes)
        return ()

    def resolve_attribute(
        self, attribute: str, collections: list[str]
    ) -> str:
        """Find which of ``collections`` owns an unqualified attribute.

        Raises if the attribute is ambiguous or unknown.  Collections with
        no attribute information match nothing (queries against them must
        qualify names).
        """
        owners = [
            collection
            for collection in collections
            if attribute in self.attributes_of(collection)
        ]
        if len(owners) == 1:
            return owners[0]
        if not owners:
            raise UnknownAttributeError(
                f"attribute {attribute!r} not found in any of {collections}"
            )
        raise UnknownAttributeError(
            f"attribute {attribute!r} is ambiguous across {owners}; qualify it"
        )

    def describe(self) -> str:
        """Human-readable catalog summary."""
        lines = []
        for name in self.collection_names():
            entry = self._collections[name]
            stats_note = "stats" if entry.has_statistics else "no stats"
            lines.append(
                f"{name} @ {entry.wrapper} ({stats_note}; "
                f"attrs: {', '.join(entry.attributes) or '?'})"
            )
        return "\n".join(lines)
