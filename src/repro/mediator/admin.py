"""The administrative interface of §2.1.

"We envision an administrative interface for both the mediator and
wrapper to re-register wrappers.  This interface is necessary when the
cost formulas are improved by the wrapper implementor, or the statistics
become out of date."

:class:`AdminConsole` wraps a mediator with the operations an
administrator performs: inspecting the catalog and rule hierarchy,
dumping a wrapper's cost information back to cost-language text (via the
CDL pretty-printer), refreshing a wrapper's registration, and checking
estimate drift (how far the catalog's statistics have diverged from what
wrappers would export now).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdl.parser import parse_document
from repro.cdl.printer import print_document
from repro.mediator.mediator import Mediator


@dataclass
class DriftReport:
    """Catalog statistics vs. a wrapper's current export."""

    wrapper: str
    collection: str
    catalog_count: int
    current_count: int

    @property
    def drift_ratio(self) -> float:
        if self.catalog_count == 0:
            return float("inf") if self.current_count else 1.0
        return self.current_count / self.catalog_count

    @property
    def is_stale(self) -> bool:
        return abs(self.drift_ratio - 1.0) > 0.10


class AdminConsole:
    """Administrative operations over one mediator."""

    def __init__(self, mediator: Mediator) -> None:
        self.mediator = mediator

    # -- inspection -------------------------------------------------------------

    def catalog_report(self) -> str:
        """Collections, owners, statistics presence."""
        return self.mediator.catalog.describe()

    def rules_report(self) -> str:
        """The full Figure 10 hierarchy, outermost scope first."""
        return self.mediator.repository.describe()

    def wrapper_rules(self, source: str) -> list[str]:
        """The rules a wrapper has registered, rendered as text."""
        return [
            f"[{scoped.scope}] {scoped.rule}"
            for scoped in self.mediator.repository.rules_for_source(source)
        ]

    def dump_cost_info(self, source: str) -> str:
        """Re-export a wrapper's cost information as CDL text.

        Round-trips through the parser so the dump is guaranteed to be
        valid cost-language source an administrator can edit and feed
        back through re-registration.
        """
        wrapper = self.mediator.catalog.wrapper(source)
        export = wrapper.export_cost_info()
        if export.cdl_source is None:
            return f"// wrapper {source!r} exports no cost rules\n"
        return print_document(parse_document(export.cdl_source))

    # -- statistics drift ----------------------------------------------------------

    def check_drift(self) -> list[DriftReport]:
        """Compare catalog statistics with each wrapper's current export.

        Non-invasive: nothing is re-registered; the administrator decides
        based on the report.
        """
        reports: list[DriftReport] = []
        catalog = self.mediator.catalog
        for name in catalog.wrapper_names():
            wrapper = catalog.wrapper(name)
            export = wrapper.export_cost_info()
            for stats in export.statistics:
                if stats.name not in catalog.statistics:
                    continue
                recorded = catalog.statistics.get(stats.name)
                reports.append(
                    DriftReport(
                        wrapper=name,
                        collection=stats.name,
                        catalog_count=recorded.count_object,
                        current_count=stats.count_object,
                    )
                )
        return reports

    def refresh(self, source: str) -> int:
        """Re-register one wrapper in place; returns its rule count."""
        wrapper = self.mediator.catalog.wrapper(source)
        return self.mediator.register(wrapper)

    def refresh_stale(self) -> list[str]:
        """Re-register every wrapper whose statistics drifted >10 %."""
        stale = sorted({r.wrapper for r in self.check_drift() if r.is_stale})
        for name in stale:
            self.refresh(name)
        return stale
