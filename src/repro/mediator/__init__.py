"""The mediator: catalog, registration, optimizer, executor, facade."""

from repro.mediator.admin import AdminConsole, DriftReport
from repro.mediator.cache import CacheStats, SubanswerCache
from repro.mediator.catalog import MediatorCatalog
from repro.mediator.executor import (
    MEDIATOR_PROFILE,
    ExecutorOptions,
    MediatorExecutor,
)
from repro.mediator.mediator import Mediator, QueryResult
from repro.mediator.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
    OptimizerStats,
)
from repro.mediator.queryspec import QuerySpec, UnionSpec
from repro.mediator.registration import register_wrapper
from repro.mediator.scheduler import DispatchOutcome, SubmitScheduler
from repro.obs import ObservabilityOptions, QueryTelemetry

__all__ = [
    "AdminConsole",
    "CacheStats",
    "DispatchOutcome",
    "DriftReport",
    "ExecutorOptions",
    "MEDIATOR_PROFILE",
    "ObservabilityOptions",
    "QueryTelemetry",
    "UnionSpec",
    "Mediator",
    "MediatorCatalog",
    "MediatorExecutor",
    "OptimizationResult",
    "Optimizer",
    "OptimizerOptions",
    "OptimizerStats",
    "QueryResult",
    "QuerySpec",
    "SubanswerCache",
    "SubmitScheduler",
    "register_wrapper",
]
