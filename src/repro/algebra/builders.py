"""Fluent helpers to build logical plans in tests and examples.

The mediator usually produces plans from SQL; these helpers make it
pleasant to write plans directly, e.g.::

    plan = (
        scan("Employee")
        .where(eq("salary", 10))
        .keep("name", "salary")
        .submit_to("hr_wrapper")
    )
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.algebra.expressions import Comparison, Predicate, attr, eq
from repro.algebra.logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    Sort,
    Submit,
    Union,
)


class PlanBuilder:
    """Wraps a :class:`PlanNode` and offers chainable construction."""

    def __init__(self, node: PlanNode) -> None:
        self.node = node

    # -- unary operators ------------------------------------------------------

    def where(self, predicate: Predicate) -> "PlanBuilder":
        return PlanBuilder(Select(self.node, predicate))

    def where_eq(self, attribute: str, value: Any) -> "PlanBuilder":
        return self.where(eq(attribute, value))

    def keep(self, *attributes: str) -> "PlanBuilder":
        return PlanBuilder(Project(self.node, attributes))

    def order_by(self, *keys: str, descending: bool = False) -> "PlanBuilder":
        return PlanBuilder(Sort(self.node, keys, descending))

    def distinct(self) -> "PlanBuilder":
        return PlanBuilder(Distinct(self.node))

    def aggregate(
        self,
        group_by: Sequence[str] = (),
        aggregates: Sequence[AggregateSpec] = (),
    ) -> "PlanBuilder":
        return PlanBuilder(Aggregate(self.node, group_by, aggregates))

    def submit_to(self, wrapper: str) -> "PlanBuilder":
        return PlanBuilder(Submit(self.node, wrapper))

    # -- binary operators -------------------------------------------------------

    def join(
        self,
        other: "PlanBuilder | PlanNode",
        left_attr: str,
        right_attr: str,
        left_collection: str | None = None,
        right_collection: str | None = None,
    ) -> "PlanBuilder":
        right_node = other.node if isinstance(other, PlanBuilder) else other
        predicate = Comparison(
            "=",
            attr(left_attr, left_collection),
            attr(right_attr, right_collection),
        )
        return PlanBuilder(Join(self.node, right_node, predicate))

    def union(self, other: "PlanBuilder | PlanNode") -> "PlanBuilder":
        right_node = other.node if isinstance(other, PlanBuilder) else other
        return PlanBuilder(Union(self.node, right_node))

    # -- unwrap -----------------------------------------------------------------

    def build(self) -> PlanNode:
        return self.node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanBuilder({self.node.describe()})"


def scan(collection: str) -> PlanBuilder:
    """Start a plan from a base-collection scan."""
    return PlanBuilder(Scan(collection))


def count_star(alias: str = "count") -> AggregateSpec:
    """``COUNT(*) AS alias`` aggregate spec."""
    return AggregateSpec("count", None, alias)
