"""The mediator algebra (§2.2).

"Although there exist many different data source managers, the basic
algebraic operators are always the same" — the mediator algebra covers:

* unary operators: :class:`Scan`, :class:`Select`, :class:`Project`,
  :class:`Sort`;
* binary operators: :class:`Join`, :class:`Union`;
* aggregate operators: :class:`Distinct` (duplicate elimination) and
  :class:`Aggregate` (grouping with SUM/AVG/COUNT/MIN/MAX);
* :class:`Submit`, "used to model the issuing of a subplan to a wrapper".

Plans are immutable trees.  Every node knows its ``operator_name`` (the
name rule heads match on), its children, and how to describe itself for
rule unification via :meth:`PlanNode.match_args`.

The cost estimator annotates plans externally (it never mutates nodes), so
a single plan object can be costed under several cost models — exactly
what the benchmark harness does when comparing the generic, calibrated and
blended estimates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.algebra.expressions import AttributeRef, Comparison, Predicate
from repro.errors import PlanError

_node_ids = itertools.count(1)

#: Aggregate function names supported by :class:`Aggregate`.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``function(attribute) AS alias``.

    ``attribute`` may be ``None`` only for ``count`` (i.e. ``COUNT(*)``).
    """

    function: str
    attribute: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"unknown aggregate function {self.function!r}")
        if self.attribute is None and self.function != "count":
            raise PlanError(f"{self.function}(*) is not defined")

    def __str__(self) -> str:
        inner = self.attribute if self.attribute is not None else "*"
        return f"{self.function}({inner}) AS {self.alias}"


class PlanNode:
    """Base class of logical plan nodes.

    Node identity (``node_id``) is used by the estimator to key its
    annotations; structural equality is intentionally *not* defined so two
    occurrences of the same subtree cost independently.
    """

    operator_name: str = "?"

    def __init__(self) -> None:
        self.node_id = next(_node_ids)

    # -- tree structure -------------------------------------------------------

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    # -- semantics helpers ------------------------------------------------------

    def base_collections(self) -> set[str]:
        """Names of all base collections scanned under this node."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, Scan):
                names.add(node.collection)
        return names

    def primary_collection(self) -> str | None:
        """The collection a rule-head name argument should match.

        A unary pipeline over a single scan has that scan's collection as
        its primary; joins and unions have none (a rule head naming a
        collection cannot match a multi-collection input).
        """
        collections = self.base_collections()
        if len(collections) == 1:
            return next(iter(collections))
        return None

    def match_args(self) -> tuple[Any, ...]:
        """The argument tuple rule heads unify against (see core.rules)."""
        return ()

    # -- display ---------------------------------------------------------------

    def describe(self) -> str:
        """One-line description of this node alone."""
        return self.operator_name

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the subtree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.node_id} {self.describe()}>"


class Scan(PlanNode):
    """Scan a base collection: ``scan(employee)``."""

    operator_name = "scan"

    def __init__(self, collection: str) -> None:
        super().__init__()
        if not collection:
            raise PlanError("scan needs a collection name")
        self.collection = collection

    def match_args(self) -> tuple[Any, ...]:
        return (self.collection,)

    def describe(self) -> str:
        return f"scan({self.collection})"


class Select(PlanNode):
    """Filter rows by a predicate: ``select(C, A = V)``."""

    operator_name = "select"

    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child, self.predicate)

    def describe(self) -> str:
        return f"select({self.predicate})"


class Project(PlanNode):
    """Keep only the named attributes: ``project(C, a, b)``.

    ``attributes`` are the *output* names; ``renames`` optionally maps an
    output name to the input attribute it reads (``SELECT oid AS sid``
    becomes ``attributes=("sid",), renames={"sid": "oid"}``).
    """

    operator_name = "project"

    def __init__(
        self,
        child: PlanNode,
        attributes: Sequence[str],
        renames: dict[str, str] | None = None,
    ) -> None:
        super().__init__()
        if not attributes:
            raise PlanError("project needs at least one attribute")
        self.child = child
        self.attributes = tuple(attributes)
        self.renames = dict(renames or {})
        for output in self.renames:
            if output not in self.attributes:
                raise PlanError(
                    f"rename target {output!r} is not a projected attribute"
                )

    def source_of(self, output: str) -> str:
        """The input attribute an output column reads."""
        return self.renames.get(output, output)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child, self.attributes)

    def describe(self) -> str:
        parts = [
            f"{self.renames[a]} AS {a}" if a in self.renames else a
            for a in self.attributes
        ]
        return f"project({', '.join(parts)})"


class Sort(PlanNode):
    """Order rows by one or more keys."""

    operator_name = "sort"

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        descending: bool = False,
    ) -> None:
        super().__init__()
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys = tuple(keys)
        self.descending = descending

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child, self.keys)

    def describe(self) -> str:
        direction = " DESC" if self.descending else ""
        return f"sort({', '.join(self.keys)}{direction})"


class Distinct(PlanNode):
    """Eliminate duplicate rows (the paper's duplicate-elimination
    aggregate operator)."""

    operator_name = "distinct"

    def __init__(self, child: PlanNode) -> None:
        super().__init__()
        self.child = child

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "distinct()"


class Aggregate(PlanNode):
    """Group rows and compute aggregate functions (§2.2)."""

    operator_name = "aggregate"

    def __init__(
        self,
        child: PlanNode,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        super().__init__()
        if not aggregates and not group_by:
            raise PlanError("aggregate needs group keys or aggregate specs")
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child, self.group_by, self.aggregates)

    def describe(self) -> str:
        parts = [str(spec) for spec in self.aggregates]
        if self.group_by:
            parts.append(f"BY {', '.join(self.group_by)}")
        return f"aggregate({'; '.join(parts)})"


class Join(PlanNode):
    """Equi-join of two inputs: ``join(C1, C2, a1 = a2)``.

    ``predicate`` must be a :class:`Comparison` between two attribute
    references (the Figure 9 ``<join pred>`` shape); richer join conditions
    are expressed as a Select above a Join by the translator.
    """

    operator_name = "join"

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Comparison,
    ) -> None:
        super().__init__()
        if not isinstance(predicate, Comparison) or not predicate.is_attr_attr:
            raise PlanError(
                f"join predicate must compare two attributes, got {predicate}"
            )
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def left_attribute(self) -> AttributeRef:
        assert isinstance(self.predicate.left, AttributeRef)
        return self.predicate.left

    @property
    def right_attribute(self) -> AttributeRef:
        assert isinstance(self.predicate.right, AttributeRef)
        return self.predicate.right

    def match_args(self) -> tuple[Any, ...]:
        return (self.left, self.right, self.predicate)

    def describe(self) -> str:
        return f"join({self.predicate})"


class BindJoin(PlanNode):
    """A dependent (bind) join: evaluate the outer side, then probe the
    inner *collection* at its wrapper with the outer join-key values.

    This is the classical mediator technique for the situation §7
    motivates — "avoid processing a large number of images by first
    selecting a few images from other data source": instead of shipping
    the whole inner collection, the mediator sends the (few) outer keys
    as a disjunctive selection the inner wrapper can answer through its
    index.

    The inner side is *parameterized*, not a static subtree: at runtime
    the executor builds ``select(scan(inner), inner_attr IN outer-keys
    [AND inner_filters])`` batches and submits them to ``wrapper``.
    ``children`` therefore contains only the outer plan.
    """

    operator_name = "bindjoin"

    def __init__(
        self,
        outer: PlanNode,
        outer_attribute: AttributeRef,
        inner_collection: str,
        inner_attribute: AttributeRef,
        wrapper: str,
        inner_filters: Predicate | None = None,
        batch_size: int = 50,
    ) -> None:
        super().__init__()
        if not inner_collection or not wrapper:
            raise PlanError("bindjoin needs an inner collection and wrapper")
        if batch_size < 1:
            raise PlanError("bindjoin batch size must be >= 1")
        self.outer = outer
        self.outer_attribute = outer_attribute
        self.inner_collection = inner_collection
        self.inner_attribute = inner_attribute
        self.wrapper = wrapper
        self.inner_filters = inner_filters
        self.batch_size = batch_size

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer,)

    def base_collections(self) -> set[str]:
        return super().base_collections() | {self.inner_collection}

    def match_args(self) -> tuple[Any, ...]:
        return (self.outer, self.inner_collection)

    def describe(self) -> str:
        return (
            f"bindjoin({self.outer_attribute} -> "
            f"{self.inner_collection}.{self.inner_attribute.name} @ {self.wrapper})"
        )


class Union(PlanNode):
    """Bag union of two union-compatible inputs."""

    operator_name = "union"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def match_args(self) -> tuple[Any, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "union()"


class Submit(PlanNode):
    """Issue a subplan to a wrapper (§2.2's ``submit`` operator).

    Everything strictly below a Submit executes at the named wrapper;
    everything above executes at the mediator.  The cost of a Submit node
    covers shipping the subquery and the result rows.
    """

    operator_name = "submit"

    def __init__(
        self,
        child: PlanNode,
        wrapper: str,
        *,
        shard: int | None = None,
        shard_of: str | None = None,
    ) -> None:
        super().__init__()
        if not wrapper:
            raise PlanError("submit needs a wrapper name")
        self.child = child
        self.wrapper = wrapper
        #: Shard identity when this submit is a :class:`Scatter` branch:
        #: the scheme index of the shard it targets and the *logical*
        #: collection being fanned out.  Telemetry-only metadata — it
        #: never changes what the wrapper executes, so plans with and
        #: without it behave identically.
        self.shard = shard
        self.shard_of = shard_of

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def match_args(self) -> tuple[Any, ...]:
        return (self.child, self.wrapper)

    def describe(self) -> str:
        return f"submit[{self.wrapper}]"


class Scatter(PlanNode):
    """Fan one subquery out to the shards of a partitioned collection.

    A beyond-the-paper operator: each branch is a :class:`Submit` carrying
    the same subquery against one shard's physical collection, and the
    gather is a bag union in branch order.  ``collection`` is the
    *logical* name — :meth:`base_collections` reports it (not the
    physical shard names) so join validation, rule-head unification and
    statistics lookups see the partitioned collection with its aggregated
    statistics.  ``total_shards`` records the scheme size; a pruned
    scatter carries fewer branches than ``total_shards``.
    """

    operator_name = "scatter"

    def __init__(
        self,
        branches: Sequence["Submit"],
        collection: str,
        shard_key: str,
        total_shards: int,
    ) -> None:
        super().__init__()
        if not branches:
            raise PlanError("scatter needs at least one branch")
        for branch in branches:
            if not isinstance(branch, Submit):
                raise PlanError(
                    f"scatter branches must be submits, got {branch.describe()}"
                )
        if total_shards < len(branches):
            raise PlanError(
                f"scatter has {len(branches)} branches but only "
                f"{total_shards} total shards"
            )
        if not collection or not shard_key:
            raise PlanError("scatter needs a collection and shard key")
        self.branches = tuple(branches)
        self.collection = collection
        self.shard_key = shard_key
        self.total_shards = total_shards

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return self.branches

    def base_collections(self) -> set[str]:
        return {self.collection}

    def match_args(self) -> tuple[Any, ...]:
        return (self.collection,)

    def describe(self) -> str:
        return (
            f"scatter[{self.collection}/"
            f"{len(self.branches)} of {self.total_shards} shards]"
        )


@dataclass
class _Validation:
    """Accumulates problems found by :func:`validate_plan`."""

    problems: list[str] = field(default_factory=list)

    def complain(self, node: PlanNode, message: str) -> None:
        self.problems.append(f"{node.describe()}: {message}")


def validate_plan(root: PlanNode) -> None:
    """Check structural invariants of a plan; raise :class:`PlanError`.

    Invariants: Submit nodes are not nested (a wrapper never re-submits),
    every Scan appears under at most one Submit, and join predicates refer
    to attributes available from the respective sides when qualified.
    """
    report = _Validation()
    _validate(root, inside_submit=False, report=report)
    if report.problems:
        raise PlanError("; ".join(report.problems))


def _validate(node: PlanNode, inside_submit: bool, report: _Validation) -> None:
    if isinstance(node, BindJoin) and inside_submit:
        report.complain(node, "bindjoin inside a submit (wrappers cannot probe)")
    if isinstance(node, Scatter) and inside_submit:
        report.complain(node, "scatter inside a submit (wrappers cannot fan out)")
    if isinstance(node, Submit):
        if inside_submit:
            report.complain(node, "nested submit")
        _validate(node.child, True, report)
        return
    if isinstance(node, Join) and node.predicate.is_attr_attr:
        left_col = node.predicate.left.collection  # type: ignore[union-attr]
        right_col = node.predicate.right.collection  # type: ignore[union-attr]
        if left_col and left_col not in node.left.base_collections():
            if left_col in node.right.base_collections():
                report.complain(node, "join predicate sides are swapped")
            else:
                report.complain(
                    node, f"left attribute names unknown collection {left_col!r}"
                )
        if right_col and right_col not in node.right.base_collections():
            if right_col not in node.left.base_collections():
                report.complain(
                    node, f"right attribute names unknown collection {right_col!r}"
                )
    for child in node.children:
        _validate(child, inside_submit, report)


def clone_plan(root: PlanNode) -> PlanNode:
    """Deep-copy a plan tree with *fresh* node ids.

    Used when a subtree must be re-costed under a different source
    assignment (replica candidates): the estimator's subplan cache keys
    on ``(node_id, variable)`` and cached values depend on the owning
    source, so re-pricing a shared subtree in place would poison the
    cache.  Scans are rebuilt too — every node in the clone is new.
    """
    if isinstance(root, Submit):
        return Submit(
            clone_plan(root.child),
            root.wrapper,
            shard=root.shard,
            shard_of=root.shard_of,
        )
    if isinstance(root, Scan):
        return Scan(root.collection)
    if isinstance(root, Select):
        return Select(clone_plan(root.child), root.predicate)
    if isinstance(root, Project):
        return Project(clone_plan(root.child), root.attributes, root.renames)
    if isinstance(root, Sort):
        return Sort(clone_plan(root.child), root.keys, root.descending)
    if isinstance(root, Distinct):
        return Distinct(clone_plan(root.child))
    if isinstance(root, Aggregate):
        return Aggregate(clone_plan(root.child), root.group_by, root.aggregates)
    if isinstance(root, Join):
        return Join(clone_plan(root.left), clone_plan(root.right), root.predicate)
    if isinstance(root, BindJoin):
        return BindJoin(
            clone_plan(root.outer),
            root.outer_attribute,
            root.inner_collection,
            root.inner_attribute,
            root.wrapper,
            root.inner_filters,
            root.batch_size,
        )
    if isinstance(root, Union):
        return Union(clone_plan(root.left), clone_plan(root.right))
    if isinstance(root, Scatter):
        branches = [clone_plan(branch) for branch in root.branches]
        return Scatter(
            branches,  # type: ignore[arg-type]
            root.collection,
            root.shard_key,
            root.total_shards,
        )
    return root


def strip_submits(root: PlanNode) -> PlanNode:
    """Return the same plan with Submit nodes removed (for wrappers that
    execute the raw algebra)."""
    if isinstance(root, Submit):
        return strip_submits(root.child)
    if isinstance(root, Select):
        return Select(strip_submits(root.child), root.predicate)
    if isinstance(root, Project):
        return Project(strip_submits(root.child), root.attributes, root.renames)
    if isinstance(root, Sort):
        return Sort(strip_submits(root.child), root.keys, root.descending)
    if isinstance(root, Distinct):
        return Distinct(strip_submits(root.child))
    if isinstance(root, Aggregate):
        return Aggregate(strip_submits(root.child), root.group_by, root.aggregates)
    if isinstance(root, Join):
        return Join(strip_submits(root.left), strip_submits(root.right), root.predicate)
    if isinstance(root, BindJoin):
        return BindJoin(
            strip_submits(root.outer),
            root.outer_attribute,
            root.inner_collection,
            root.inner_attribute,
            root.wrapper,
            root.inner_filters,
            root.batch_size,
        )
    if isinstance(root, Union):
        return Union(strip_submits(root.left), strip_submits(root.right))
    if isinstance(root, Scatter):
        # Submit-free scatter semantics collapse to a union chain over the
        # shard subplans (the gather is a bag union in branch order).
        stripped = [strip_submits(branch) for branch in root.branches]
        result = stripped[0]
        for branch in stripped[1:]:
            result = Union(result, branch)
        return result
    return root
