"""Scalar expressions and predicates used by the mediator algebra.

The algebra of §2.2 manipulates predicates in selections and joins.  The
paper's cost-rule grammar (Figure 9) restricts rule-head predicates to
``attribute = value`` and ``attribute = attribute``; real queries also use
ranges, so the expression language here supports the six comparison
operators plus boolean connectives, and the rule matcher maps each
predicate back onto the grammar's shapes.

Rows flowing through the engine are plain ``dict``s mapping attribute
names to Python values.  Joins qualify colliding names as
``collection.attribute``; :class:`AttributeRef` resolution therefore tries
the qualified spelling first, then the bare name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import PlanError

Row = Mapping[str, Any]

#: Comparison operators, in the spelling used by the SQL front end.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Expression:
    """Base class of scalar expressions."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """Bare names of all attributes the expression reads."""
        return set()


@dataclass(frozen=True)
class AttributeRef(Expression):
    """A reference to an attribute, optionally qualified by collection."""

    name: str
    collection: str | None = None

    @property
    def qualified(self) -> str:
        if self.collection:
            return f"{self.collection}.{self.name}"
        return self.name

    def evaluate(self, row: Row) -> Any:
        if self.collection is not None:
            qualified = self.qualified
            if qualified in row:
                return row[qualified]
        if self.name in row:
            return row[self.name]
        # Fall back to any qualified spelling of the bare name.
        suffix = f".{self.name}"
        for key, value in row.items():
            if key.endswith(suffix):
                return value
        raise PlanError(f"row has no attribute {self.qualified!r}: {sorted(row)}")

    def attributes(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


class Predicate(Expression):
    """Base class of boolean-valued expressions."""

    def evaluate(self, row: Row) -> bool:
        raise NotImplementedError

    def negate(self) -> "Predicate":
        return Not(self)

    def conjuncts(self) -> Iterator["Predicate"]:
        """Iterate the top-level AND-ed factors (self if not an AND)."""
        yield self


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` for one of the six comparison operators."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def negate(self) -> Predicate:
        return Comparison(_NEGATED[self.op], self.left, self.right)

    def flipped(self) -> "Comparison":
        """The same predicate with operands swapped (``a < b`` → ``b > a``)."""
        return Comparison(_FLIPPED[self.op], self.right, self.left)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    # -- shape helpers used by rule matching and the optimizer ---------------

    @property
    def is_attr_value(self) -> bool:
        """True for ``Attribute op Literal`` (Figure 9 ``<sel pred>`` shape)."""
        return isinstance(self.left, AttributeRef) and isinstance(self.right, Literal)

    @property
    def is_value_attr(self) -> bool:
        return isinstance(self.left, Literal) and isinstance(self.right, AttributeRef)

    @property
    def is_attr_attr(self) -> bool:
        """True for ``Attribute op Attribute`` (Figure 9 ``<join pred>``)."""
        return isinstance(self.left, AttributeRef) and isinstance(
            self.right, AttributeRef
        )

    def normalized(self) -> "Comparison":
        """Rewrite ``Literal op Attribute`` as ``Attribute op' Literal``."""
        if self.is_value_attr:
            return self.flipped()
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Logical conjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def conjuncts(self) -> Iterator[Predicate]:
        yield from self.left.conjuncts()
        yield from self.right.conjuncts()

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Logical disjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation."""

    operand: Predicate

    def evaluate(self, row: Row) -> bool:
        return not self.operand.evaluate(row)

    def negate(self) -> Predicate:
        return self.operand

    def attributes(self) -> set[str]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (empty WHERE clause)."""

    def evaluate(self, row: Row) -> bool:
        return True

    def conjuncts(self) -> Iterator[Predicate]:
        return iter(())

    def __str__(self) -> str:
        return "TRUE"


def conjunction(predicates: list[Predicate]) -> Predicate:
    """Combine a list of predicates with AND (TruePredicate when empty)."""
    live = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not live:
        return TruePredicate()
    result = live[0]
    for predicate in live[1:]:
        result = And(result, predicate)
    return result


def attr(name: str, collection: str | None = None) -> AttributeRef:
    """Shorthand constructor for an attribute reference."""
    return AttributeRef(name=name, collection=collection)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def eq(attribute: AttributeRef | str, value: Any) -> Comparison:
    """Shorthand for the Figure 9 select-predicate shape ``A = v``."""
    if isinstance(attribute, str):
        attribute = attr(attribute)
    right = value if isinstance(value, Expression) else lit(value)
    return Comparison("=", attribute, right)


def between(attribute: AttributeRef | str, low: Any, high: Any) -> Predicate:
    """``low <= A AND A <= high`` as a conjunction of comparisons."""
    if isinstance(attribute, str):
        attribute = attr(attribute)
    return And(
        Comparison(">=", attribute, lit(low)),
        Comparison("<=", attribute, lit(high)),
    )
