"""repro — a reproduction of "Leveraging Mediator Cost Models with
Heterogeneous Data Sources" (Naacke, Gardarin, Tomasic; INRIA RR-3143 /
ICDE 1998), the DISCO extensible mediator cost model.

Quickstart::

    from repro import Mediator, ObjectStoreWrapper
    from repro.oo7 import TINY, load_database

    mediator = Mediator()
    mediator.register(ObjectStoreWrapper("oo7", load_database(TINY)))
    result = mediator.query("SELECT * FROM AtomicParts WHERE Id = 7")
    print(result.rows, result.elapsed_ms)

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured results.
"""

from repro.core.estimator import CostEstimator, EstimatorOptions
from repro.core.generic import CoefficientSet, GenericCoefficients
from repro.core.scopes import RuleRepository, Scope
from repro.core.statistics import AttributeStats, CollectionStats, StatisticsCatalog
from repro.errors import ReproError
from repro.mediator.mediator import Mediator, QueryResult
from repro.mediator.optimizer import OptimizerOptions
from repro.mediator.queryspec import QuerySpec
from repro.wrappers import (
    FlatFileWrapper,
    ObjectStoreWrapper,
    RelationalWrapper,
    WebSourceWrapper,
    Wrapper,
)

__version__ = "1.0.0"

__all__ = [
    "AttributeStats",
    "CoefficientSet",
    "CollectionStats",
    "CostEstimator",
    "EstimatorOptions",
    "FlatFileWrapper",
    "GenericCoefficients",
    "Mediator",
    "ObjectStoreWrapper",
    "OptimizerOptions",
    "QueryResult",
    "QuerySpec",
    "RelationalWrapper",
    "ReproError",
    "RuleRepository",
    "Scope",
    "StatisticsCatalog",
    "WebSourceWrapper",
    "Wrapper",
    "__version__",
]
