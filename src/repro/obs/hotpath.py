"""Wall-clock profiling of the optimizer hot path.

Everything else in :mod:`repro.obs` runs on the *simulated* clock — the
milliseconds the cost model predicts.  This module measures the opposite
axis: how much **real** CPU time the mediator spends producing those
predictions.  :class:`HotpathProfiler` wraps the four phases of the
planning pipeline in ``time.perf_counter`` timers:

* ``parse`` — SQL → :class:`~repro.mediator.queryspec.QuerySpec`;
* ``optimize`` — one whole :meth:`~repro.mediator.optimizer.Optimizer.
  optimize` call (enumeration + costing);
* ``candidate`` — one candidate costed by the enumerator (nested inside
  ``optimize``);
* ``estimate`` — one :meth:`~repro.core.estimator.CostEstimator.
  estimate` call (nested inside ``candidate``).

Phases nest, so their wall totals overlap by design: ``optimize``
contains every ``candidate``, which contains every ``estimate``.  The
interesting derived numbers — plans costed per second, the
estimate-vs-enumeration split — are computed by the E14 benchmark
(``repro.bench.hotpath``), the baseline ROADMAP item 5 optimizes
against.

The profiler follows the tracer's null-object discipline exactly:
instrumentation sites hold a reference that defaults to
:data:`NULL_HOTPATH` and guard on ``hotpath.enabled`` (a plain class
attribute), so the disabled path costs one attribute read.  The profiler
never touches the simulated clock — enabling it cannot perturb a single
estimated or measured millisecond.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator


class HotpathProfiler:
    """Accumulates real (``perf_counter``) seconds per named phase."""

    enabled: bool = True

    def __init__(self) -> None:
        self.wall_s: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase occurrence on the wall clock."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_s[name] = self.wall_s.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def reset(self) -> None:
        self.wall_s.clear()
        self.calls.clear()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-phase ``{calls, wall_s, mean_us}`` (JSON-ready)."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self.calls):
            calls = self.calls[name]
            wall = self.wall_s.get(name, 0.0)
            out[name] = {
                "calls": calls,
                "wall_s": wall,
                "mean_us": (wall / calls) * 1e6 if calls else 0.0,
            }
        return out


class _NullPhase:
    """Reusable no-op context manager of the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullHotpathProfiler(HotpathProfiler):
    """The disabled profiler: every operation is a constant-time no-op."""

    enabled = False

    def phase(self, name: str):  # type: ignore[override]
        return _NULL_PHASE


#: Shared disabled profiler — the default every instrumented site holds.
NULL_HOTPATH = NullHotpathProfiler()
