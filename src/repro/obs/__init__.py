"""Query telemetry: spans, metrics, and cost-model drift tracking.

The subsystem has three independent layers, all optional and all off by
default (:class:`ObservabilityOptions` on :class:`~repro.mediator.
mediator.Mediator`):

* :mod:`repro.obs.trace` — span trees over the simulated clock (one root
  per query, children for parse/optimize/estimate/execute/submit/wave);
* :mod:`repro.obs.metrics` — a Prometheus-style metrics registry fed by
  the pipeline's existing counters;
* :mod:`repro.obs.accuracy` — per-(scope, rule) q-error between
  estimates and measured executions, the paper-specific payoff.

:class:`QueryTelemetry` bundles the three and owns the per-query feeding
logic, so the mediator's only obligations are (a) handing its components
the tracer and (b) calling :meth:`QueryTelemetry.record_query` once per
answered query.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.obs.accuracy import DriftObservation, DriftTracker, RuleDrift, q_error
from repro.obs.export import chrome_trace, chrome_trace_json
from repro.obs.hotpath import NULL_HOTPATH, HotpathProfiler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
)
from repro.obs.profile import OperatorRow, QueryProfile, build_query_profile
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.mediator import QueryResult
    from repro.mediator.resilience import CircuitBreaker
    from repro.wrappers.base import ExecutionResult

#: Breaker states exported by the ``repro_breaker_state`` gauge.
_BREAKER_STATES = ("closed", "half_open", "open")


@dataclass
class ObservabilityOptions:
    """Telemetry knobs of the mediator.  Everything defaults off; with
    ``enabled=False`` no telemetry object is even constructed and every
    instrumentation site short-circuits on the shared null tracer."""

    enabled: bool = False
    #: Record span trees (attached to ``QueryResult.trace``).
    trace: bool = True
    #: Per-composition-operator spans during execution (the chattiest
    #: layer; disable to trace only submits/waves/phases).
    trace_compose: bool = True
    #: Maintain the metrics registry.
    metrics: bool = True
    #: Track per-(scope, rule) estimate-vs-actual drift.
    drift: bool = True
    #: Build a :class:`~repro.obs.profile.QueryProfile` per answered
    #: query (requires ``trace``; attached to ``QueryResult.profile``).
    profile: bool = True
    #: Wall-clock phase timers around parse/optimize/candidate/estimate
    #: (see :mod:`repro.obs.hotpath`).  Off even under ``all_on`` —
    #: real-time measurements are nondeterministic by nature, so they
    #: are opt-in for benchmarks (E14) rather than ambient.
    hotpath: bool = False

    @classmethod
    def all_on(cls) -> "ObservabilityOptions":
        return cls(enabled=True)


class QueryTelemetry:
    """The per-mediator telemetry state: tracer + registry + drift."""

    def __init__(self, options: ObservabilityOptions, clock=None) -> None:
        self.options = options
        self.tracer: SpanTracer = (
            SpanTracer(clock) if options.trace else NULL_TRACER
        )
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if options.metrics else None
        )
        self.drift: DriftTracker | None = DriftTracker() if options.drift else None
        self.hotpath: HotpathProfiler | None = (
            HotpathProfiler() if options.hotpath else None
        )

    # -- per-query feeding -----------------------------------------------------

    def record_query(
        self,
        result: "QueryResult",
        execution: "ExecutionResult",
        breakers: "Mapping[str, CircuitBreaker] | None" = None,
    ) -> None:
        """Fold one answered query into the registry and drift tracker,
        refresh breaker-state gauges, and attach the query's profile."""
        if self.metrics is not None:
            self._record_metrics(result, execution)
            if breakers:
                self._record_breaker_states(breakers)
            if self.hotpath is not None:
                self._record_hotpath()
        if self.drift is not None:
            self.drift.observe_plan(result.estimate, execution.submit_log)
        if self.options.profile and result.trace is not None:
            result.profile = build_query_profile(result, execution)

    def _record_metrics(
        self, result: "QueryResult", execution: "ExecutionResult"
    ) -> None:
        metrics = self.metrics
        assert metrics is not None
        metrics.counter("repro_queries_total", "Queries answered").inc()
        metrics.histogram(
            "repro_query_elapsed_ms", "Simulated query latency"
        ).observe(result.elapsed_ms)
        submits = metrics.counter(
            "repro_submits_total", "Wrapper subqueries dispatched", ("wrapper",)
        )
        rows_shipped = metrics.counter(
            "repro_rows_shipped_total", "Rows returned by wrappers", ("wrapper",)
        )
        shard_submits = metrics.counter(
            "repro_shard_submits_total",
            "Scatter-branch subqueries dispatched per shard",
            ("wrapper", "shard"),
        )
        for submit, submit_result in execution.submit_log:
            submits.inc(wrapper=submit.wrapper)
            rows_shipped.inc(len(submit_result.rows), wrapper=submit.wrapper)
            if submit.shard is not None:
                shard_submits.inc(wrapper=submit.wrapper, shard=str(submit.shard))
        metrics.counter("repro_rows_returned_total", "Rows answered to clients").inc(
            len(execution.rows)
        )
        cache_hits = metrics.counter(
            "repro_cache_hits_total", "Subanswer-cache hits"
        )
        cache_misses = metrics.counter(
            "repro_cache_misses_total", "Subanswer-cache misses"
        )
        # inc(0) still materializes the series, so the exposition shows
        # an explicit zero instead of omitting the sample.
        cache_hits.inc(result.cache_hits)
        cache_misses.inc(result.cache_misses)
        requests = cache_hits.total() + cache_misses.total()
        metrics.gauge(
            "repro_cache_hit_ratio", "Lifetime subanswer-cache hit ratio"
        ).set(cache_hits.total() / requests if requests else 0.0)
        stats = result.optimizer_stats
        metrics.counter(
            "repro_candidates_considered_total", "Optimizer candidates costed"
        ).inc(stats.candidates_considered)
        metrics.counter(
            "repro_candidates_pruned_total", "Candidates cut by the §4.3.2 bound"
        ).inc(stats.candidates_pruned)
        metrics.counter(
            "repro_formulas_evaluated_total", "Cost formulas evaluated"
        ).inc(stats.formulas_evaluated)
        metrics.counter(
            "repro_variables_computed_total", "Cost variables computed"
        ).inc(stats.variables_computed)
        metrics.counter(
            "repro_parallel_saved_ms_total",
            "Milliseconds saved by concurrent waves",
            # On the real-time backend the makespan is measured, so a
            # wave whose pool overhead beats its overlap win reports a
            # negative saving; a counter only accumulates the wins.
        ).inc(max(0.0, result.parallel_saved_ms))
        self._record_resilience_metrics(result, execution)

    def _record_resilience_metrics(
        self, result: "QueryResult", execution: "ExecutionResult"
    ) -> None:
        """Fault-handling counters: retries, timeouts, breaker activity,
        degraded answers.  Only materialized when the executor runs with
        a resilience layer, so fault-free deployments keep a clean
        exposition."""
        res = execution.resilience
        if res is None:
            return
        metrics = self.metrics
        assert metrics is not None
        # inc(0) still materializes the series: the exposition shows
        # explicit zeros once the resilience layer is on.
        metrics.counter(
            "repro_degraded_queries_total",
            "Queries answered with at least one source missing",
        ).inc(1 if result.degraded else 0)
        per_wrapper = (
            ("repro_submit_retries_total", "Submit retry attempts", res.retries),
            (
                "repro_submit_timeouts_total",
                "Submits whose wrapper wait hit the deadline",
                res.timeouts,
            ),
            (
                "repro_submit_errors_total",
                "Failed wrapper attempts (transient + unavailable)",
                res.attempt_errors,
            ),
            (
                "repro_breaker_trips_total",
                "Circuit-breaker closed/half-open to open transitions",
                res.breaker_trips,
            ),
            (
                "repro_breaker_fast_fails_total",
                "Submits short-circuited by an open breaker",
                res.breaker_fast_fails,
            ),
            (
                "repro_failed_submits_total",
                "Submits that exhausted their retry budget",
                res.failed_submits,
            ),
        )
        for name, help_text, values in per_wrapper:
            counter = metrics.counter(name, help_text, ("wrapper",))
            for wrapper, amount in values.items():
                counter.inc(amount, wrapper=wrapper)
        metrics.counter(
            "repro_backoff_ms_total", "Simulated ms slept in retry backoff"
        ).inc(res.backoff_ms)
        metrics.counter(
            "repro_cancelled_wait_ms_total",
            "Simulated wrapper-wait ms avoided by deadline cancellation",
        ).inc(res.cancelled_wait_ms)
        self._record_replication_metrics(execution)

    def _record_replication_metrics(
        self, execution: "ExecutionResult"
    ) -> None:
        """Replica-dispatch counters: which member served each submit,
        failover rescues, hedges launched/won.  Only materialized when
        the catalog has replica sets."""
        rep = execution.replication
        if rep is None:
            return
        metrics = self.metrics
        assert metrics is not None
        per_wrapper = (
            (
                "repro_replica_selected_total",
                "Submits served per replica-set member",
                rep.selected,
            ),
            (
                "repro_failover_total",
                "Submits rescued by re-dispatch to a sibling replica",
                rep.failovers,
            ),
            (
                "repro_hedge_launched_total",
                "Backup submits launched for straggling waits",
                rep.hedges_launched,
            ),
            (
                "repro_hedge_won_total",
                "Hedged submits where the backup answered first",
                rep.hedges_won,
            ),
        )
        for name, help_text, values in per_wrapper:
            counter = metrics.counter(name, help_text, ("wrapper",))
            for wrapper, amount in values.items():
                counter.inc(amount, wrapper=wrapper)
        metrics.counter(
            "repro_hedge_cancelled_ms_total",
            "Simulated wrapper-wait ms of cancelled hedge losers",
        ).inc(rep.hedge_cancelled_ms)

    def _record_breaker_states(
        self, breakers: "Mapping[str, CircuitBreaker]"
    ) -> None:
        """One-hot ``repro_breaker_state{wrapper, state}`` gauge rows.

        Every (wrapper, state) pair is materialized — 1 for the current
        state, 0 for the other two — so dashboards can plot transitions
        without join gymnastics."""
        metrics = self.metrics
        assert metrics is not None
        gauge = metrics.gauge(
            "repro_breaker_state",
            "Circuit-breaker state per wrapper (one-hot)",
            ("wrapper", "state"),
        )
        for wrapper, breaker in breakers.items():
            current = breaker.state
            for state in _BREAKER_STATES:
                gauge.set(
                    1.0 if state == current else 0.0,
                    wrapper=wrapper,
                    state=state,
                )

    def _record_hotpath(self) -> None:
        """Surface the wall-clock phase timers as gauges."""
        metrics = self.metrics
        hotpath = self.hotpath
        assert metrics is not None and hotpath is not None
        wall = metrics.gauge(
            "repro_hotpath_wall_seconds",
            "Cumulative real seconds per planning phase",
            ("phase",),
        )
        calls = metrics.gauge(
            "repro_hotpath_calls",
            "Cumulative phase entries on the planning hot path",
            ("phase",),
        )
        for name, seconds in hotpath.wall_s.items():
            wall.set(seconds, phase=name)
            calls.set(float(hotpath.calls.get(name, 0)), phase=name)
        # The execute phase gets a dedicated millisecond gauge: on the
        # real-time backend this is genuine dispatch wall time (the
        # number E16 validates against), and before the phase existed
        # real-backend runs reported zero on the hotpath dashboard.
        metrics.gauge(
            "repro_hotpath_execute_ms",
            "Cumulative wall milliseconds spent executing plans",
        ).set(hotpath.wall_s.get("execute", 0.0) * 1000.0)


__all__ = [
    "Counter",
    "DriftObservation",
    "DriftTracker",
    "Gauge",
    "Histogram",
    "HotpathProfiler",
    "MetricsRegistry",
    "NULL_HOTPATH",
    "NULL_TRACER",
    "NullTracer",
    "ObservabilityOptions",
    "OperatorRow",
    "QueryProfile",
    "QueryTelemetry",
    "RuleDrift",
    "Span",
    "SpanTracer",
    "Summary",
    "build_query_profile",
    "chrome_trace",
    "chrome_trace_json",
    "q_error",
]
