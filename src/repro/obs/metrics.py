"""A metrics registry with Prometheus-style exposition.

:class:`MetricsRegistry` unifies the counters the pipeline already keeps
scattered across components (``EstimatorCounters``, ``OptimizerStats``,
``CacheStats``, ``ParallelStats``) into one queryable surface:

* :class:`Counter` — monotonically increasing totals (queries, submits
  per wrapper, rows shipped, cache hits);
* :class:`Gauge` — point-in-time values (cache hit ratio, entries);
* :class:`Histogram` — distributions with cumulative buckets (query
  latency in simulated ms).

All three support label dimensions (``submits_total{wrapper="oo7"}``).
:meth:`MetricsRegistry.expose_text` renders the standard text exposition
format (``# HELP`` / ``# TYPE`` + samples); :meth:`MetricsRegistry.
snapshot` returns the same data as plain dicts for JSON export and test
assertions.  Everything is deterministic and process-local — there is no
background collection thread; the mediator records after each query.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping

LabelKey = tuple[tuple[str, str], ...]


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, Any]
) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Metric:
    """Base: a named family of samples, one per label combination."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)

    # Subclasses implement ``samples()`` yielding (suffix, label key, value).

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        raise NotImplementedError

    def expose(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        for suffix, key, value in self.samples():
            rendered = value if not math.isinf(value) else "+Inf"
            lines.append(f"{self.name}{suffix}{_render_labels(key)} {rendered}")
        return "\n".join(lines)


class Counter(Metric):
    metric_type = "counter"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        return [("", key, value) for key, value in sorted(self._values.items())]


class Gauge(Metric):
    metric_type = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        return [("", key, value) for key, value in sorted(self._values.items())]


#: Default latency buckets, in simulated milliseconds.  Federated queries
#: pay >=300 ms of §2.3 communication per submit, so the grid is coarse.
DEFAULT_BUCKETS = (
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    float("inf"),
)


class Histogram(Metric):
    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, label_names)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        return self._totals.get(_label_key(self.label_names, labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        out: list[tuple[str, LabelKey, float]] = []
        for key in sorted(self._counts):
            for index, bound in enumerate(self.buckets):
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                bucket_key = key + (("le", le),)
                out.append(("_bucket", bucket_key, float(self._counts[key][index])))
            out.append(("_sum", key, self._sums[key]))
            out.append(("_count", key, float(self._totals[key])))
        return out


class MetricsRegistry:
    """Named metrics, get-or-create semantics, one exposition endpoint."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def _get_or_create(self, cls: type, name: str, help_text: str, labels, **kw):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}{existing.label_names}"
                )
            return existing
        metric = cls(name, help_text, labels, **kw)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, tuple(labels), buckets=buckets
        )

    # -- export --------------------------------------------------------------

    def expose_text(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return "\n".join(
            metric.expose() for _name, metric in sorted(self._metrics.items())
        )

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict export (JSON-ready) of every metric's samples."""
        out: dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            out[name] = {
                "type": metric.metric_type,
                "help": metric.help_text,
                "samples": [
                    {
                        "name": name + suffix,
                        "labels": dict(key),
                        "value": value,
                    }
                    for suffix, key, value in metric.samples()
                ],
            }
        return out

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
