"""A metrics registry with Prometheus-style exposition.

:class:`MetricsRegistry` unifies the counters the pipeline already keeps
scattered across components (``EstimatorCounters``, ``OptimizerStats``,
``CacheStats``, ``ParallelStats``) into one queryable surface:

* :class:`Counter` — monotonically increasing totals (queries, submits
  per wrapper, rows shipped, cache hits);
* :class:`Gauge` — point-in-time values (cache hit ratio, entries);
* :class:`Histogram` — distributions with cumulative buckets (query
  latency in simulated ms);
* :class:`Summary` — deterministic nearest-rank quantiles over a
  bounded window (the p50/p95/p99 latency figures of the serving
  benchmark).

All four support label dimensions (``submits_total{wrapper="oo7"}``) and
are safe under interleaved multi-query access: every mutation takes the
metric's lock (the serving layer's scheduler also serializes tasks, so
the locks are uncontended in the single-process simulation).
:meth:`MetricsRegistry.expose_text` renders the standard text exposition
format (``# HELP`` / ``# TYPE`` + samples); :meth:`MetricsRegistry.
snapshot` returns the same data as plain dicts for JSON export and test
assertions.  Everything is deterministic and process-local — there is no
background collection thread; the mediator records after each query.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Any, Iterable, Mapping

LabelKey = tuple[tuple[str, str], ...]


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, Any]
) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Metric:
    """Base: a named family of samples, one per label combination."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        # The serving layer records from multiple query tasks; a
        # per-metric lock makes every mutation atomic under interleaved
        # multi-query access (reads for exposition take it too).
        self._lock = threading.Lock()

    # Subclasses implement ``samples()`` yielding (suffix, label key, value).

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        raise NotImplementedError

    def expose(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        for suffix, key, value in self.samples():
            rendered = value if not math.isinf(value) else "+Inf"
            lines.append(f"{self.name}{suffix}{_render_labels(key)} {rendered}")
        return "\n".join(lines)


class Counter(Metric):
    metric_type = "counter"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        with self._lock:
            return [("", key, value) for key, value in sorted(self._values.items())]


class Gauge(Metric):
    metric_type = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Iterable[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        with self._lock:
            return [("", key, value) for key, value in sorted(self._values.items())]


#: Default latency buckets, in simulated milliseconds.  Federated queries
#: pay >=300 ms of §2.3 communication per submit, so the grid is coarse.
DEFAULT_BUCKETS = (
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    float("inf"),
)


class Histogram(Metric):
    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, label_names)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        out: list[tuple[str, LabelKey, float]] = []
        with self._lock:
            for key in sorted(self._counts):
                for index, bound in enumerate(self.buckets):
                    le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                    bucket_key = key + (("le", le),)
                    out.append(
                        ("_bucket", bucket_key, float(self._counts[key][index]))
                    )
                out.append(("_sum", key, self._sums[key]))
                out.append(("_count", key, float(self._totals[key])))
        return out


#: Default quantiles exposed by :class:`Summary` metrics — the latency
#: percentiles the E11 serving benchmark reports.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


#: Default per-label-set window of :class:`Summary`.  Large enough that
#: the serving benchmark's quantiles are exact (it observes far fewer
#: latencies than this), small enough that sustained traffic cannot grow
#: a metric without bound.
DEFAULT_MAX_SAMPLES = 8192


class Summary(Metric):
    """A bounded-window latency summary with deterministic quantiles.

    Histogram buckets answer "how many under X ms" but interpolate
    percentiles coarsely; the serving benchmark needs real p50/p95/p99
    figures.  A :class:`Summary` keeps a sliding window of the most
    recent ``max_samples`` observations per label set and computes
    nearest-rank quantiles over that window — exact while fewer than
    ``max_samples`` values have been observed, and recent-window
    quantiles (still fully deterministic: the window is the last N
    observations, no sampling) afterwards.  ``_sum`` and ``_count`` are
    kept as separate exact accumulators over *all* observations, so the
    window never distorts totals.  Exposition follows the Prometheus
    summary convention: ``{quantile="0.5"}`` samples plus ``_sum`` and
    ``_count``.
    """

    metric_type = "summary"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Iterable[str] = (),
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        super().__init__(name, help_text, label_names)
        self.quantiles = tuple(quantiles)
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile out of range: {q}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._observations: dict[LabelKey, deque[float]] = {}
        self._counts: dict[LabelKey, int] = {}
        self._sums: dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            window = self._observations.get(key)
            if window is None:
                window = self._observations[key] = deque(maxlen=self.max_samples)
            window.append(float(value))
            self._counts[key] = self._counts.get(key, 0) + 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    @staticmethod
    def _rank(sorted_values: "list[float]", q: float) -> float:
        if not sorted_values:
            return math.nan
        index = max(0, math.ceil(q * len(sorted_values)) - 1)
        return sorted_values[index]

    def quantile(self, q: float, **labels: Any) -> float:
        """Nearest-rank quantile of the windowed observations (NaN when
        empty)."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._rank(sorted(self._observations.get(key, ())), q)

    def count(self, **labels: Any) -> int:
        """Exact number of observations ever made (not the window size)."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._counts.get(key, 0)

    def sum(self, **labels: Any) -> float:
        """Exact sum of every observation ever made."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def window_size(self, **labels: Any) -> int:
        """How many observations the quantile window currently holds."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return len(self._observations.get(key, ()))

    def samples(self) -> "list[tuple[str, LabelKey, float]]":
        out: list[tuple[str, LabelKey, float]] = []
        with self._lock:
            for key in sorted(self._observations):
                values = sorted(self._observations[key])
                for q in self.quantiles:
                    out.append(
                        ("", key + (("quantile", f"{q:g}"),), self._rank(values, q))
                    )
                out.append(("_sum", key, self._sums[key]))
                out.append(("_count", key, float(self._counts[key])))
        return out


class MetricsRegistry:
    """Named metrics, get-or-create semantics, one exposition endpoint."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        with self._lock:
            return self._metrics[name]

    def _get_or_create(self, cls: type, name: str, help_text: str, labels, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, labels, **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, tuple(labels), buckets=buckets
        )

    def summary(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> Summary:
        return self._get_or_create(
            Summary,
            name,
            help_text,
            tuple(labels),
            quantiles=quantiles,
            max_samples=max_samples,
        )

    # -- export --------------------------------------------------------------

    def _sorted_metrics(self) -> "list[tuple[str, Metric]]":
        with self._lock:
            return sorted(self._metrics.items())

    def expose_text(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return "\n".join(
            metric.expose() for _name, metric in self._sorted_metrics()
        )

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict export (JSON-ready) of every metric's samples."""
        out: dict[str, Any] = {}
        for name, metric in self._sorted_metrics():
            out[name] = {
                "type": metric.metric_type,
                "help": metric.help_text,
                "samples": [
                    {
                        "name": name + suffix,
                        "labels": dict(key),
                        "value": value,
                    }
                    for suffix, key, value in metric.samples()
                ],
            }
        return out

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


def exposition_from_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Render a saved :meth:`MetricsRegistry.snapshot` as text exposition.

    The offline twin of :meth:`MetricsRegistry.expose_text`, for the
    ``python -m repro.obs metrics`` CLI: a snapshot JSON recorded earlier
    renders the same families and samples the live registry would have
    (labels are emitted in sorted order, since JSON round-trips do not
    preserve the registry's label declaration order).
    """
    blocks: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        lines = [
            f"# HELP {name} {family.get('help', '')}",
            f"# TYPE {name} {family.get('type', 'untyped')}",
        ]
        for sample in family.get("samples", ()):
            key = tuple(sorted(sample.get("labels", {}).items()))
            value = sample["value"]
            rendered = value if not math.isinf(value) else "+Inf"
            lines.append(f"{sample['name']}{_render_labels(key)} {rendered}")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)
