"""Per-query cost attribution — the flight recorder's core join.

A :class:`QueryProfile` answers, for **one** executed query, the question
the whole paper is about: *where did the simulated time go, and which
cost rule predicted it badly?*  It joins the three records the pipeline
already produces:

* the **span tree** (``QueryResult.trace``) — the simulated timeline of
  phases, waves, submits and mediator-side compose operators;
* the **submit log** (``ExecutionResult.submit_log``) — the measured
  wrapper-side executions, exactly what §4.3.1 history learns from;
* the **estimate provenance** (``PlanEstimate.nodes``) — per-plan-node
  predicted values and the ``scope[source]: rule`` that produced each.

The result is a per-operator attribution table (estimated vs simulated
cost, per wave and per shard) plus a *blame ranking*: the per-(scope,
rule) q-errors of this query alone, worst first — a single-query slice
of the lifetime :class:`~repro.obs.accuracy.DriftTracker`.

Attribution invariant: every span under the ``execute`` phase becomes a
row whose ``self_ms`` is its *exclusive* simulated time (duration minus
children).  Exclusive times telescope, so the rows sum to the execute
span's duration — which **is** the query's measured ``TotalTime``.  The
sum holds for sequential, parallel-wave and scatter executions alike
(wave branches overlap on the wrapper side, so their ``self_ms`` is 0
and the wave row carries the makespan).

Profiles are built by :meth:`~repro.obs.QueryTelemetry.record_query`
when ``ObservabilityOptions.profile`` is on and attached to
``QueryResult.profile``; they export as JSON (:meth:`QueryProfile.
to_dict`) and pretty text (:meth:`QueryProfile.render`), and round-trip
through :meth:`QueryProfile.from_dict` for the ``python -m repro.obs``
ops CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.accuracy import DriftTracker, parse_provenance, q_error
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.mediator import QueryResult
    from repro.wrappers.base import ExecutionResult


@dataclass
class OperatorRow:
    """One span of the execute phase, joined against its estimate."""

    name: str
    kind: str
    start_ms: float
    #: Inclusive simulated duration of the span.
    duration_ms: float
    #: Exclusive simulated time (duration minus children) — the share of
    #: ``TotalTime`` attributed to this operator itself.
    self_ms: float
    #: Plan-node identity, when the span carries one (submit rows point
    #: at the wrapper-side subquery root, compose rows at their node).
    node_id: int | None = None
    operator: str | None = None
    wrapper: str | None = None
    #: Shard identity of scatter-branch submits.
    shard: int | None = None
    shard_of: str | None = None
    #: Ordinal of the enclosing wave span (document order), if any.
    wave: int | None = None
    #: Measured values: rows produced and — for submits — the wrapper's
    #: own response time (the overlap a zero-length wave-branch span
    #: cannot show).
    rows: int | None = None
    wrapper_ms: float | None = None
    #: Estimated values of the joined plan node.
    estimated_ms: float | None = None
    estimated_rows: float | None = None
    #: q-errors of the estimate against this row's measurement.
    q_time: float | None = None
    q_rows: float | None = None
    #: ``variable -> "scope[source]: rule"`` of the joined estimate.
    provenance: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "self_ms": self.self_ms,
            "node_id": self.node_id,
            "operator": self.operator,
            "wrapper": self.wrapper,
            "shard": self.shard,
            "shard_of": self.shard_of,
            "wave": self.wave,
            "rows": self.rows,
            "wrapper_ms": self.wrapper_ms,
            "estimated_ms": self.estimated_ms,
            "estimated_rows": self.estimated_rows,
            "q_time": self.q_time,
            "q_rows": self.q_rows,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "OperatorRow":
        return cls(**record)


@dataclass
class QueryProfile:
    """The per-operator attribution of one executed query."""

    sql: str | None
    elapsed_ms: float
    estimated_ms: float
    operators: list[OperatorRow] = field(default_factory=list)
    #: Per-wave summary (ordinal, branches, makespan, saved time).
    waves: list[dict[str, Any]] = field(default_factory=list)
    #: Per-(collection, shard, wrapper) summary of scatter submits.
    shards: list[dict[str, Any]] = field(default_factory=list)
    #: Per-member replica-dispatch summary (selected/failover/hedge
    #: counts) when the catalog has replica sets; empty otherwise.
    replication: list[dict[str, Any]] = field(default_factory=list)
    #: Per-(scope, rule, variable) q-errors of this query, worst mean
    #: first — the blame ranking.
    blame: list[dict[str, Any]] = field(default_factory=list)
    #: Lifecycle events outside the execute phase — the serving layer
    #: appends admission events (admit/queue/reject, with tenant labels)
    #: and start/finish marks here.
    timeline: list[dict[str, Any]] = field(default_factory=list)
    #: Executed submits with no plan estimate (runtime-built bind-join
    #: probes) — excluded from the blame ranking, never silently.
    unmatched_submits: int = 0

    @property
    def attributed_ms(self) -> float:
        """Sum of exclusive operator times; equals ``elapsed_ms`` up to
        float rounding (the attribution invariant)."""
        return sum(row.self_ms for row in self.operators)

    @property
    def q_total(self) -> float:
        """Whole-query q-error: estimated vs simulated TotalTime."""
        return q_error(self.estimated_ms, self.elapsed_ms)

    def worst_blame(self, variable: str = "TotalTime") -> dict[str, Any] | None:
        """The worst-mispredicting (scope, rule) for one variable."""
        candidates = [b for b in self.blame if b["variable"] == variable]
        if not candidates:
            return None
        return max(candidates, key=lambda b: b["max_q_error"])

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "sql": self.sql,
            "elapsed_ms": self.elapsed_ms,
            "estimated_ms": self.estimated_ms,
            "attributed_ms": self.attributed_ms,
            "q_total": self.q_total,
            "operators": [row.to_dict() for row in self.operators],
            "waves": [dict(w) for w in self.waves],
            "shards": [dict(s) for s in self.shards],
            "replication": [dict(r) for r in self.replication],
            "blame": [dict(b) for b in self.blame],
            "timeline": [dict(t) for t in self.timeline],
            "unmatched_submits": self.unmatched_submits,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "QueryProfile":
        return cls(
            sql=record.get("sql"),
            elapsed_ms=record["elapsed_ms"],
            estimated_ms=record["estimated_ms"],
            operators=[
                OperatorRow.from_dict(row) for row in record.get("operators", ())
            ],
            waves=[dict(w) for w in record.get("waves", ())],
            shards=[dict(s) for s in record.get("shards", ())],
            replication=[dict(r) for r in record.get("replication", ())],
            blame=[dict(b) for b in record.get("blame", ())],
            timeline=[dict(t) for t in record.get("timeline", ())],
            unmatched_submits=record.get("unmatched_submits", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "QueryProfile":
        return cls.from_dict(json.loads(text))

    # -- pretty text -----------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"QueryProfile: {self.sql or '(plan)'}",
            (
                f"simulated TotalTime {self.elapsed_ms:.1f} ms, "
                f"estimated {self.estimated_ms:.1f} ms "
                f"(q-error {self.q_total:.2f}); "
                f"attributed {self.attributed_ms:.1f} ms over "
                f"{len(self.operators)} operators"
            ),
            "",
            _table(
                (
                    "operator",
                    "kind",
                    "wave",
                    "shard",
                    "self ms",
                    "total ms",
                    "rows",
                    "wrapper ms",
                    "est ms",
                    "est rows",
                    "q(time)",
                ),
                [
                    (
                        _clip(row.operator or row.name, 36),
                        row.kind,
                        _opt(row.wave),
                        _opt(row.shard),
                        f"{row.self_ms:.1f}",
                        f"{row.duration_ms:.1f}",
                        _opt(row.rows),
                        _opt_f(row.wrapper_ms),
                        _opt_f(row.estimated_ms),
                        _opt_f(row.estimated_rows),
                        _opt_f(row.q_time, "{:.2f}"),
                    )
                    for row in self.operators
                ],
            ),
        ]
        if self.waves:
            lines += [
                "",
                "waves:",
                _table(
                    ("wave", "branches", "makespan ms", "saved ms", "cached", "failed"),
                    [
                        (
                            str(w.get("wave")),
                            str(w.get("branches")),
                            f"{w.get('makespan_ms', 0.0):.1f}",
                            f"{w.get('saved_ms', 0.0):.1f}",
                            str(w.get("cached_branches", 0)),
                            str(w.get("failed_branches", 0)),
                        )
                        for w in self.waves
                    ],
                ),
            ]
        if self.shards:
            lines += [
                "",
                "shards:",
                _table(
                    ("collection", "shard", "wrapper", "submits", "rows", "wrapper ms"),
                    [
                        (
                            str(s.get("collection")),
                            str(s.get("shard")),
                            str(s.get("wrapper")),
                            str(s.get("submits")),
                            str(s.get("rows")),
                            f"{s.get('wrapper_ms', 0.0):.1f}",
                        )
                        for s in self.shards
                    ],
                ),
            ]
        if self.replication:
            lines += [
                "",
                "replication:",
                _table(
                    ("member", "selected", "failovers", "hedges", "hedge wins"),
                    [
                        (
                            str(r.get("wrapper")),
                            str(r.get("selected", 0)),
                            str(r.get("failovers", 0)),
                            str(r.get("hedges_launched", 0)),
                            str(r.get("hedges_won", 0)),
                        )
                        for r in self.replication
                    ],
                ),
            ]
        if self.blame:
            lines += [
                "",
                "blame ranking (per-(scope, rule) q-error, worst mean first):",
                _table(
                    ("scope", "source", "rule", "variable", "n", "mean q", "max q"),
                    [
                        (
                            b["scope"],
                            b["source"] or "-",
                            _clip(b["rule"], 44),
                            b["variable"],
                            str(b["count"]),
                            f"{b['mean_q_error']:.2f}",
                            f"{b['max_q_error']:.2f}",
                        )
                        for b in self.blame
                    ],
                ),
            ]
        if self.unmatched_submits:
            lines.append(
                f"({self.unmatched_submits} runtime-built submits without a "
                "plan estimate were excluded from the blame ranking)"
            )
        if self.timeline:
            lines += ["", "timeline:"]
            for entry in self.timeline:
                at = entry.get("at_ms")
                prefix = f"  {at:.1f} ms  " if isinstance(at, (int, float)) else "  "
                detail = ", ".join(
                    f"{key}={value}"
                    for key, value in entry.items()
                    if key not in ("at_ms", "event")
                )
                lines.append(f"{prefix}{entry.get('event')}  {detail}")
        return "\n".join(lines)


# -- building ------------------------------------------------------------------


def build_query_profile(
    result: "QueryResult", execution: "ExecutionResult"
) -> QueryProfile | None:
    """Join one answered query's trace, submit log and estimate.

    Returns ``None`` when the result carries no trace (observability off
    or ``trace=False``) — the profile is a view over recorded telemetry,
    never a new measurement.
    """
    trace = result.trace
    if trace is None:
        return None
    execute = next(iter(trace.find(kind="phase", name="execute")), None)
    root = execute if execute is not None else trace
    estimate_nodes = result.estimate.nodes if result.estimate is not None else {}

    profile = QueryProfile(
        sql=result.sql,
        elapsed_ms=result.elapsed_ms,
        estimated_ms=(
            result.estimate.total_time if result.estimate is not None else 0.0
        ),
    )
    wave_counter = 0

    def visit(span: Span, wave: int | None) -> None:
        nonlocal wave_counter
        this_wave = wave
        if span.kind == "wave":
            wave_counter += 1
            this_wave = wave_counter
            profile.waves.append(
                {
                    "wave": this_wave,
                    "branches": span.attributes.get("branches"),
                    "makespan_ms": span.attributes.get("makespan_ms", 0.0),
                    "sequential_ms": span.attributes.get("sequential_ms", 0.0),
                    "saved_ms": span.attributes.get("saved_ms", 0.0),
                    "cached_branches": span.attributes.get("cached_branches", 0),
                    "failed_branches": span.attributes.get("failed_branches", 0),
                }
            )
        profile.operators.append(_row_for(span, this_wave, estimate_nodes))
        for child in span.children:
            visit(child, this_wave)

    visit(root, None)
    profile.shards = _shard_summary(profile.operators)
    profile.replication = _replication_summary(execution)
    profile.blame, profile.unmatched_submits = _blame_ranking(result, execution)
    return profile


def _replication_summary(execution: "ExecutionResult") -> list[dict[str, Any]]:
    """Per-member replica-dispatch rows from the execution's counters."""
    rep = getattr(execution, "replication", None)
    if rep is None:
        return []
    members = sorted(
        set(rep.selected)
        | set(rep.failovers)
        | set(rep.hedges_launched)
        | set(rep.hedges_won)
    )
    return [
        {
            "wrapper": member,
            "selected": rep.selected.get(member, 0),
            "failovers": rep.failovers.get(member, 0),
            "hedges_launched": rep.hedges_launched.get(member, 0),
            "hedges_won": rep.hedges_won.get(member, 0),
        }
        for member in members
    ]


def _row_for(
    span: Span, wave: int | None, estimate_nodes: dict[int, Any]
) -> OperatorRow:
    attrs = span.attributes
    row = OperatorRow(
        name=span.name,
        kind=span.kind,
        start_ms=span.start_ms,
        duration_ms=span.duration_ms,
        self_ms=span.duration_ms
        - sum(child.duration_ms for child in span.children),
        wave=wave,
        wrapper=attrs.get("wrapper"),
        shard=attrs.get("shard"),
        shard_of=attrs.get("shard_of"),
        rows=attrs.get("rows"),
        wrapper_ms=attrs.get("wrapper_ms"),
    )
    if span.kind == "submit":
        # The wrapper-side measurement corresponds to the Submit *child*
        # (the subtree the wrapper ran) — the same join the DriftTracker
        # makes — so the row's estimate columns come from the child node.
        row.node_id = attrs.get("child_node_id")
        row.operator = attrs.get("subquery")
    else:
        row.node_id = attrs.get("node_id")
        row.operator = attrs.get("node")
    node_estimate = (
        estimate_nodes.get(row.node_id) if row.node_id is not None else None
    )
    if node_estimate is None:
        return row
    estimated_time = node_estimate.values.get("TotalTime")
    estimated_rows = node_estimate.values.get("CountObject")
    if isinstance(estimated_time, (int, float)):
        row.estimated_ms = float(estimated_time)
    if isinstance(estimated_rows, (int, float)):
        row.estimated_rows = float(estimated_rows)
    row.provenance = {
        variable: text
        for variable, text in node_estimate.provenance.items()
        if variable in ("TotalTime", "CountObject")
    }
    # Submit rows compare the wrapper's measured response time; compose
    # and phase rows compare the span's inclusive simulated duration
    # (node estimates are cumulative over their subtree, as are spans).
    # Zero-duration markers (instant events) carry no measurement, so
    # they get estimate columns but no q-error.
    measured_time = row.wrapper_ms if span.kind == "submit" else row.duration_ms
    if row.estimated_ms is not None and measured_time:
        row.q_time = q_error(row.estimated_ms, measured_time)
    if row.estimated_rows is not None and row.rows is not None:
        row.q_rows = q_error(row.estimated_rows, float(row.rows))
    return row


def _shard_summary(operators: list[OperatorRow]) -> list[dict[str, Any]]:
    groups: dict[tuple, dict[str, Any]] = {}
    for row in operators:
        if row.kind != "submit" or row.shard is None:
            continue
        key = (row.shard_of, row.shard, row.wrapper)
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "collection": row.shard_of,
                "shard": row.shard,
                "wrapper": row.wrapper,
                "submits": 0,
                "rows": 0,
                "wrapper_ms": 0.0,
            }
        group["submits"] += 1
        group["rows"] += row.rows or 0
        group["wrapper_ms"] += row.wrapper_ms or 0.0
    return [groups[key] for key in sorted(groups, key=lambda k: (str(k[0]), k[1]))]


def _blame_ranking(
    result: "QueryResult", execution: "ExecutionResult"
) -> tuple[list[dict[str, Any]], int]:
    """A single-query DriftTracker pass: per-(scope, rule) q-errors of
    this execution alone, worst mean first."""
    if result.estimate is None:
        return [], 0
    tracker = DriftTracker()
    tracker.observe_plan(result.estimate, execution.submit_log)
    blame = [
        {
            "scope": aggregate.scope,
            "source": aggregate.source,
            "rule": aggregate.rule,
            "variable": aggregate.variable,
            "count": aggregate.count,
            "mean_q_error": aggregate.mean_q,
            "max_q_error": aggregate.max_q,
            "last_estimated": aggregate.last_estimated,
            "last_actual": aggregate.last_actual,
        }
        for aggregate in tracker.aggregates()
    ]
    return blame, tracker.unmatched_submits


# -- small formatting helpers --------------------------------------------------


def _table(headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _clip(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _opt(value: Any) -> str:
    return "-" if value is None else str(value)


def _opt_f(value: float | None, fmt: str = "{:.1f}") -> str:
    return "-" if value is None else fmt.format(value)


__all__ = [
    "OperatorRow",
    "QueryProfile",
    "build_query_profile",
    "parse_provenance",
]
