"""Span-tree export to the Chrome trace-event (Perfetto) format.

Converts :class:`~repro.obs.trace.Span` forests into the JSON object
format every Chromium-family profiler UI loads (``chrome://tracing``,
https://ui.perfetto.dev): one complete (``ph: "X"``) event per span,
instant (``ph: "i"``) events for zero-duration markers, and metadata
records naming the process and thread lanes.

Lane layout — the flame graph of a federated query:

* the **mediator lane** (tid 0) holds the query root, phases, compose
  operators, waves and sequentially-dispatched submits;
* every **scatter-branch submit** gets a ``shard <collection>[<i>]``
  lane (one per shard index), so a scatter query fans out visually
  exactly as it does on the simulated clock;
* other **wave branches** get ``branch <i>`` lanes by position;
* the **process** is named after the tenant when one is given — the
  serving layer's per-task traces export side by side as per-tenant
  process groups.

Timestamps are simulated milliseconds scaled to the format's
microseconds.  Wave-branch submit spans have zero simulated duration
(the clock only advances when the wave commits), so their slices use the
recorded ``wrapper_ms`` — the wrapper's real overlapped busy time —
and are marked ``"overlap": true`` in ``args``.

Every event's ``args`` carries the span's attributes plus its
depth-first export ordinal (``id``) and parent ordinal (``parent``) —
the same ids :meth:`~repro.obs.trace.SpanTracer.to_json_lines` assigns —
so the original tree (ids, parent links, attributes) survives the
conversion losslessly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.trace import Span

#: tid of the mediator's own lane.
MEDIATOR_LANE = 0
#: tid base of positional wave-branch lanes.
BRANCH_LANE_BASE = 100
#: tid base of shard lanes.
SHARD_LANE_BASE = 200


def chrome_trace_events(
    roots: Iterable[Span], *, pid: int = 1, tenant: str | None = None
) -> list[dict[str, Any]]:
    """Flatten span trees into a list of trace-event records."""
    events: list[dict[str, Any]] = []
    lanes: dict[int, str] = {MEDIATOR_LANE: tenant or "mediator"}
    counter = 0

    def lane_for(span: Span, parent: Span | None, inherited: int) -> int:
        if span.kind != "submit" or parent is None or parent.kind != "wave":
            return inherited
        shard = span.attributes.get("shard")
        if shard is not None:
            tid = SHARD_LANE_BASE + int(shard)
            lanes.setdefault(
                tid, f"shard {span.attributes.get('shard_of')}[{shard}]"
            )
            return tid
        index = parent.children.index(span)
        tid = BRANCH_LANE_BASE + index
        lanes.setdefault(tid, f"branch {index}")
        return tid

    def emit(span: Span, parent: Span | None, parent_id: int | None, tid: int):
        nonlocal counter
        span_id = counter
        counter += 1
        lane = lane_for(span, parent, tid)
        args: dict[str, Any] = {"id": span_id, "parent": parent_id, "kind": span.kind}
        args.update(span.attributes)
        duration_ms = span.duration_ms
        overlap = (
            span.kind == "submit"
            and duration_ms == 0.0
            and span.attributes.get("wrapper_ms") is not None
        )
        if overlap:
            # A wave branch: zero simulated width, real wrapper overlap.
            duration_ms = float(span.attributes["wrapper_ms"])
            args["overlap"] = True
        if duration_ms == 0.0 and not span.children:
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "t",
                    "ts": span.start_ms * 1000.0,
                    "pid": pid,
                    "tid": lane,
                    "cat": span.kind,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_ms * 1000.0,
                    "dur": duration_ms * 1000.0,
                    "pid": pid,
                    "tid": lane,
                    "cat": span.kind,
                    "args": args,
                }
            )
        for child in span.children:
            emit(child, span, span_id, lane)

    for root in roots:
        emit(root, None, None, MEDIATOR_LANE)

    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": tenant or "federation"},
        }
    ]
    for tid in sorted(lanes):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lanes[tid]},
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return metadata + events


def chrome_trace(
    roots: Iterable[Span], *, pid: int = 1, tenant: str | None = None
) -> dict[str, Any]:
    """The loadable trace document (``{"traceEvents": [...]}``)."""
    return {
        "traceEvents": chrome_trace_events(roots, pid=pid, tenant=tenant),
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(
    roots: Iterable[Span], *, pid: int = 1, tenant: str | None = None
) -> str:
    return json.dumps(
        chrome_trace(roots, pid=pid, tenant=tenant), default=str, sort_keys=True
    )


def spans_from_chrome_trace(document: dict[str, Any]) -> list[Span]:
    """Rebuild the span forest from an exported trace document.

    The inverse of :func:`chrome_trace`, for round-trip verification:
    non-metadata events carry their export ordinal and parent ordinal in
    ``args``, so names, kinds, timestamps, attributes and parent links
    all restore exactly.  ``overlap`` slices restore their zero
    simulated duration.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    ordered = [
        event
        for event in document.get("traceEvents", ())
        if event.get("ph") in ("X", "i")
    ]
    for event in sorted(ordered, key=lambda e: e["args"]["id"]):
        args = dict(event["args"])
        span_id = args.pop("id")
        parent_id = args.pop("parent")
        kind = args.pop("kind")
        args.pop("overlap", None)
        start_ms = event["ts"] / 1000.0
        duration_ms = event.get("dur", 0.0) / 1000.0
        if event["args"].get("overlap"):
            duration_ms = 0.0
        span = Span(
            name=event["name"],
            kind=kind,
            start_ms=start_ms,
            end_ms=start_ms + duration_ms,
            attributes=args,
        )
        by_id[span_id] = span
        if parent_id is None:
            roots.append(span)
        else:
            by_id[parent_id].children.append(span)
    return roots


__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_json",
    "spans_from_chrome_trace",
]
