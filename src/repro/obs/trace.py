"""Span tracing over the mediator's simulated clock.

A :class:`SpanTracer` records one tree of :class:`Span` objects per root
operation (``Mediator.query`` opens a ``query`` root; ``parse``,
``optimize``, ``estimate``, ``submit``, ``wave``, ``cache`` and
``compose`` spans nest below it).  Spans are timestamped on the
**simulated** clock — the same milliseconds the cost model predicts — so
a span tree is directly comparable to the estimator's output: the
``execute`` phase span's duration *is* the measured ``TotalTime`` the
§4.3.1 history records.

Design constraints:

* **Zero overhead when disabled.**  Instrumentation sites hold a tracer
  reference that defaults to :data:`NULL_TRACER`; hot paths guard on
  ``tracer.enabled`` (a plain class attribute) and skip all span
  construction when it is False.
* **Deterministic.**  No wall time, no randomness: span ids are assigned
  at export time, timestamps come from the :class:`~repro.sources.clock.
  SimClock`.
* **Exportable.**  :meth:`SpanTracer.to_json_lines` flattens every
  finished tree into JSON-lines records (one span per line, with parent
  pointers); :meth:`Span.render` produces the indented tree that
  ``Mediator.explain`` appends when tracing is on.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol


class _Clock(Protocol):  # pragma: no cover - typing only
    @property
    def now_ms(self) -> float: ...


@dataclass
class Span:
    """One traced operation on the simulated timeline."""

    name: str
    kind: str = "span"
    start_ms: float = 0.0
    end_ms: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        """Simulated duration; 0 while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str | None = None, name: str | None = None) -> list["Span"]:
        """All descendant spans (including self) matching kind and/or name."""
        return [
            span
            for span in self.walk()
            if (kind is None or span.kind == kind)
            and (name is None or span.name == name)
        ]

    def to_dict(self) -> dict[str, Any]:
        """Nested dict form (children inline)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Indented tree rendering (the `explain` attachment)."""
        pad = "  " * indent
        attrs = ", ".join(
            f"{key}={_short(value)}" for key, value in self.attributes.items()
        )
        line = f"{pad}{self.name} [{self.kind}] {self.duration_ms:.1f}ms"
        if attrs:
            line += f" ({attrs})"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _short(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    text = str(value)
    return text if len(text) <= 60 else text[:57] + "..."


class SpanTracer:
    """Builds span trees against a simulated clock.

    ``clock`` is anything with a ``now_ms`` property (a
    :class:`~repro.sources.clock.SimClock`); ``None`` timestamps
    everything at 0.0, which keeps the tracer usable in unit tests that
    only care about structure.
    """

    enabled: bool = True

    def __init__(self, clock: _Clock | None = None) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # -- span lifecycle -------------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str = "span", **attributes: Any) -> Span:
        """Open a span as a child of the current one (or a new root)."""
        span = Span(
            name=name, kind=kind, start_ms=self._now(), attributes=dict(attributes)
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attributes: Any) -> Span:
        """Close a span (tolerates out-of-order ends by popping through)."""
        span.attributes.update(attributes)
        span.end_ms = self._now()
        while self._stack:
            if self._stack.pop() is span:
                break
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes: Any):
        opened = self.start(name, kind, **attributes)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, kind: str = "event", **attributes: Any) -> Span:
        """A zero-duration span (cache hits, prune decisions)."""
        now = self._now()
        span = Span(
            name=name,
            kind=kind,
            start_ms=now,
            end_ms=now,
            attributes=dict(attributes),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- export --------------------------------------------------------------

    def reset(self) -> None:
        """Drop all finished trees (open spans survive on the stack)."""
        self.roots = [span for span in self.roots if span.end_ms is None]

    def to_json_lines(self) -> str:
        """Flatten every root tree into JSON-lines (one span per line).

        Each record carries ``id`` and ``parent`` (None for roots) so the
        tree is reconstructable; ids are depth-first export ordinals.
        """
        lines: list[str] = []
        counter = 0

        def emit(span: Span, parent: int | None) -> None:
            nonlocal counter
            span_id = counter
            counter += 1
            lines.append(
                json.dumps(
                    {
                        "id": span_id,
                        "parent": parent,
                        "name": span.name,
                        "kind": span.kind,
                        "start_ms": span.start_ms,
                        "end_ms": span.end_ms,
                        "duration_ms": span.duration_ms,
                        "attributes": span.attributes,
                    },
                    default=str,
                    sort_keys=True,
                )
            )
            for child in span.children:
                emit(child, span_id)

        for root in self.roots:
            emit(root, None)
        return "\n".join(lines)


def spans_from_json_lines(text: str) -> list[Span]:
    """Rebuild span trees from a :meth:`SpanTracer.to_json_lines` export.

    The inverse of the exporter: records reference their parent by
    depth-first export ordinal, so children re-attach in input order and
    the returned forest is structurally identical to the exported one
    (names, kinds, timestamps, attributes, parent links).
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        span = Span(
            name=record["name"],
            kind=record["kind"],
            start_ms=record["start_ms"],
            end_ms=record["end_ms"],
            attributes=dict(record["attributes"]),
        )
        by_id[record["id"]] = span
        parent = record["parent"]
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots


class _NullContext:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


class _NullSpan(Span):
    """A span that swallows attribute writes (shared singleton)."""

    def set(self, **attributes: Any) -> "Span":
        return self


class NullTracer(SpanTracer):
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:
        self.clock = None
        self.roots = []
        self._stack = []

    def start(self, name: str, kind: str = "span", **attributes: Any) -> Span:
        return NULL_SPAN

    def end(self, span: Span, **attributes: Any) -> Span:
        return NULL_SPAN

    def span(self, name: str, kind: str = "span", **attributes: Any):
        return _NULL_CONTEXT

    def event(self, name: str, kind: str = "event", **attributes: Any) -> Span:
        return NULL_SPAN

    def to_json_lines(self) -> str:
        return ""


NULL_SPAN = _NullSpan(name="null", kind="null")
_NULL_CONTEXT = _NullContext()
#: Shared disabled tracer — the default every instrumented component holds.
NULL_TRACER = NullTracer()
