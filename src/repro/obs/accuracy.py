"""Per-scope cost-model drift tracking — estimate-vs-actual q-error.

The paper's claim is that the blended cost model (the §4 scope hierarchy
``query > predicate > collection > wrapper > local > default``) predicts
execution better than the generic model alone.  This module makes that
claim *measurable per rule*: every executed wrapper subquery is joined
against the estimate the optimizer produced for it, and the resulting
q-errors are aggregated by the ``(scope, rule)`` that supplied each
variable — the provenance :class:`~repro.core.estimator.NodeEstimate`
already records (``"predicate[oo7]: select(AtomicParts, Id = V)"``).

A drift report then answers the paper-specific question directly: *which
exported cost rule is mispredicting*, and at which scope level.  A
wrapper-scope rule with q-error 40 while the collection-scope rule of the
same source sits at 1.2 is a pinpointed calibration bug.

The tracker only learns from **measured** executions: it consumes the
executor's ``submit_log``, which by construction excludes subanswer-cache
hits (a zero-time hit would poison the actuals exactly as it would
poison §4.3.1 history recording).
"""

from __future__ import annotations

import json
import math
import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.algebra.logical import Submit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.estimator import PlanEstimate
    from repro.wrappers.base import ExecutionResult

#: The provenance format written by ``_Estimation._compute``:
#: ``scope[source]: rule name``.
_PROVENANCE = re.compile(r"^(?P<scope>[a-z]+)\[(?P<source>[^\]]*)\]: (?P<rule>.*)$")


def parse_provenance(text: str) -> tuple[str, str, str]:
    """Split a provenance string into (scope, source, rule).

    Strings that do not follow the scoped format (``"derived"``,
    ``"pruned (§4.3.2 bound exceeded)"``) fall into a synthetic
    ``internal`` scope so they still aggregate somewhere visible.
    """
    match = _PROVENANCE.match(text)
    if match is None:
        return ("internal", "", text)
    return (match.group("scope"), match.group("source"), match.group("rule"))


def q_error(estimated: float, actual: float, floor: float = 1e-9) -> float:
    """The symmetric multiplicative error ``max(est/act, act/est)``.

    1.0 is a perfect prediction; 10.0 means an order of magnitude off in
    either direction.  Values are floored to keep zero-cost corner cases
    (empty subanswers) finite.
    """
    est = max(float(estimated), floor)
    act = max(float(actual), floor)
    return max(est / act, act / est)


def log_ratio(estimated: float, actual: float, floor: float = 1e-9) -> float:
    """The *directional* error ``log(actual / estimate)``.

    q-error is symmetric by design, which is right for ranking
    mispredictions but useless for correcting them: a calibrator needs
    to know whether the model under- or over-estimates.  Summing this
    log ratio over a window gives the geometric-mean correction factor
    ``exp(sum / n)`` the fitter applies.
    """
    est = max(float(estimated), floor)
    act = max(float(actual), floor)
    return math.log(act / est)


@dataclass
class DriftObservation:
    """One (estimate, measurement) pair for one variable of one submit."""

    scope: str
    source: str
    rule: str
    variable: str
    estimated: float
    actual: float
    #: The wrapper that executed the submit — the owner of the drift,
    #: regardless of which scope's rule priced it (a default-scope
    #: generic rule has source ``__mediator__`` but the work still ran
    #: on exactly one wrapper).
    wrapper: str = ""

    @property
    def q_error(self) -> float:
        return q_error(self.estimated, self.actual)

    @property
    def log_ratio(self) -> float:
        return log_ratio(self.estimated, self.actual)


@dataclass
class RuleDrift:
    """Aggregated q-error of one (scope, rule) pair for one variable."""

    scope: str
    source: str
    rule: str
    variable: str
    wrapper: str = ""
    count: int = 0
    sum_q: float = 0.0
    max_q: float = 0.0
    #: Directional drift: summed ``log(actual / estimate)``.  The
    #: window's geometric-mean correction is ``exp(sum / count)``.
    sum_log_ratio: float = 0.0
    last_estimated: float = 0.0
    last_actual: float = 0.0

    def fold(self, observation: DriftObservation) -> None:
        q = observation.q_error
        self.count += 1
        self.sum_q += q
        self.max_q = max(self.max_q, q)
        self.sum_log_ratio += observation.log_ratio
        self.last_estimated = observation.estimated
        self.last_actual = observation.actual

    @property
    def mean_q(self) -> float:
        return self.sum_q / self.count if self.count else 0.0

    @property
    def geo_mean_ratio(self) -> float:
        """Geometric-mean actual/estimate ratio (1.0 = unbiased)."""
        return math.exp(self.sum_log_ratio / self.count) if self.count else 1.0


class DriftTracker:
    """Joins executed submits against their estimates, per (scope, rule).

    Feed it with :meth:`observe_plan` after each execution; read
    :meth:`report` (text table) or :meth:`snapshot` (JSON-ready dicts).
    """

    #: Variables joined against actuals: predicted response time and
    #: predicted cardinality, the two the executor can measure directly.
    VARIABLES = ("TotalTime", "CountObject")

    def __init__(self) -> None:
        self._aggregates: dict[tuple[str, str, str, str, str], RuleDrift] = {}
        #: Guards aggregate lookup-and-fold and the observation counters:
        #: real-backend executions can report drift from pool threads.
        self._lock = threading.Lock()
        #: Submits executed but absent from the estimated plan (runtime-
        #: built bind-join probes): counted, never silently dropped.
        self.unmatched_submits = 0
        self.observations = 0
        #: Wrappers the federation *expects* drift data for (registered
        #: sources).  A wrapper in this set with no aggregates gets an
        #: explicit ``count=0`` snapshot row, so downstream consumers
        #: (calibrator, CLI) can tell "no data" from "perfect fit".
        self.expected_wrappers: set[str] = set()

    def __len__(self) -> int:
        return len(self._aggregates)

    # -- feeding ---------------------------------------------------------------

    def expect_wrapper(self, name: str) -> None:
        """Declare a wrapper whose drift should be reported even when no
        submit has been measured yet (zero-sample row)."""
        self.expected_wrappers.add(name)

    def observe_submit(
        self,
        estimate: "PlanEstimate",
        submit: Submit,
        result: "ExecutionResult",
    ) -> list[DriftObservation]:
        """Join one executed submit against the plan estimate.

        The wrapper-side measurement corresponds to the Submit *child*
        (the subtree the wrapper ran); the mediator-side Submit node adds
        communication the wrapper never sees.
        """
        node_estimate = estimate.nodes.get(submit.child.node_id)
        if node_estimate is None:
            # Bind-join probe batches are constructed at run time; the
            # estimated plan holds the BindJoin node, not these Submits.
            with self._lock:
                self.unmatched_submits += 1
            return []
        actuals = {
            "TotalTime": float(result.total_time_ms),
            "CountObject": float(result.count),
        }
        observations: list[DriftObservation] = []
        for variable in self.VARIABLES:
            if variable not in node_estimate.values:
                continue
            estimated = node_estimate.values[variable]
            if not isinstance(estimated, (int, float)):
                continue
            scope, source, rule = parse_provenance(
                node_estimate.provenance.get(variable, "internal")
            )
            observation = DriftObservation(
                scope=scope,
                source=source,
                rule=rule,
                variable=variable,
                estimated=float(estimated),
                actual=actuals[variable],
                wrapper=submit.wrapper,
            )
            key = (scope, source, rule, variable, submit.wrapper)
            with self._lock:
                aggregate = self._aggregates.get(key)
                if aggregate is None:
                    aggregate = RuleDrift(
                        scope=scope,
                        source=source,
                        rule=rule,
                        variable=variable,
                        wrapper=submit.wrapper,
                    )
                    self._aggregates[key] = aggregate
                aggregate.fold(observation)
                self.observations += 1
            observations.append(observation)
        return observations

    def observe_plan(
        self,
        estimate: "PlanEstimate",
        submit_log: "Iterable[tuple[Submit, ExecutionResult]]",
    ) -> int:
        """Fold every measured submit of one execution in; returns the
        number of observations recorded."""
        recorded = 0
        for submit, result in submit_log:
            recorded += len(self.observe_submit(estimate, submit, result))
        return recorded

    # -- reading ---------------------------------------------------------------

    def aggregates(self) -> list[RuleDrift]:
        """All (scope, rule, variable) aggregates, worst mean q-error first."""
        return sorted(
            self._aggregates.values(), key=lambda a: a.mean_q, reverse=True
        )

    def worst(self, variable: str = "TotalTime") -> RuleDrift | None:
        """The most-mispredicting rule for one variable."""
        candidates = [a for a in self.aggregates() if a.variable == variable]
        return candidates[0] if candidates else None

    def report(self) -> str:
        """An aligned text table of per-(scope, rule) drift."""
        return render_drift_snapshot(self.snapshot())

    def snapshot(self) -> dict:
        """JSON-ready export, grouped per (scope, rule, wrapper).

        Expected wrappers with no measured submits contribute explicit
        ``count=0`` rows — "no data" must never be confused with
        "perfect fit" by a consumer folding over the rows.
        """
        rows = [
            {
                "scope": a.scope,
                "source": a.source,
                "rule": a.rule,
                "variable": a.variable,
                "wrapper": a.wrapper,
                "count": a.count,
                "mean_q_error": a.mean_q,
                "max_q_error": a.max_q,
                "sum_log_ratio": a.sum_log_ratio,
                "geo_mean_ratio": a.geo_mean_ratio,
                "last_estimated": a.last_estimated,
                "last_actual": a.last_actual,
            }
            for a in self.aggregates()
        ]
        measured = {a.wrapper for a in self._aggregates.values()}
        for wrapper in sorted(self.expected_wrappers - measured):
            for variable in self.VARIABLES:
                rows.append(
                    {
                        "scope": "none",
                        "source": wrapper,
                        "rule": "(no measured submits)",
                        "variable": variable,
                        "wrapper": wrapper,
                        "count": 0,
                        "mean_q_error": 0.0,
                        "max_q_error": 0.0,
                        "sum_log_ratio": 0.0,
                        "geo_mean_ratio": 1.0,
                        "last_estimated": 0.0,
                        "last_actual": 0.0,
                    }
                )
        return {
            "observations": self.observations,
            "unmatched_submits": self.unmatched_submits,
            "rules": rows,
        }

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


def render_drift_snapshot(snapshot: dict) -> str:
    """The drift report table, built from a :meth:`DriftTracker.snapshot`
    dict — live (``tracker.report()``) or loaded back from a saved JSON
    by the ``python -m repro.obs drift`` CLI."""
    headers = (
        "scope",
        "source",
        "wrapper",
        "rule",
        "variable",
        "n",
        "mean q",
        "max q",
    )
    rows = [
        (
            r["scope"],
            r["source"] or "-",
            r.get("wrapper") or "-",
            r["rule"] if len(r["rule"]) <= 48 else r["rule"][:45] + "...",
            r["variable"],
            str(r["count"]),
            f"{r['mean_q_error']:.2f}" if r["count"] else "-",
            f"{r['max_q_error']:.2f}" if r["count"] else "-",
        )
        for r in snapshot.get("rules", ())
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    unmatched = snapshot.get("unmatched_submits", 0)
    if unmatched:
        lines.append(
            f"({unmatched} runtime-built submits without a "
            "plan estimate were skipped)"
        )
    return "\n".join(lines)
