"""The observability ops CLI: ``python -m repro.obs <subcommand>``.

The operator-facing surface of the flight recorder.  Subcommands:

* ``record`` — run one profiled scatter query over a small sharded
  federation and write every artifact the other subcommands consume
  (``profile.json``, ``spans.jsonl``, ``trace.json``, ``drift.json``,
  ``metrics.json``, ``metrics.txt``) into ``--out-dir``;
* ``profile FILE`` — pretty-print a saved ``profile.json`` (the
  per-operator attribution table, shard/wave summaries, blame ranking);
* ``trace FILE`` — convert a ``spans.jsonl`` span export into a Chrome
  trace-event / Perfetto document (stdout or ``--out``);
* ``drift FILE`` — render a saved drift snapshot as the q-error table;
* ``metrics FILE`` — render a saved metrics snapshot as the Prometheus
  text exposition;
* ``calibrate fit|show|rollback`` — fit guardrailed cost-calibration
  overlays from a saved drift window, inspect the overlay history, and
  re-activate any prior version (§4.3 feedback loop, offline flavour).

Everything operates on files, so a recorded query can be inspected long
after (and far away from) the process that ran it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.accuracy import render_drift_snapshot
from repro.obs.export import chrome_trace
from repro.obs.metrics import exposition_from_snapshot
from repro.obs.profile import QueryProfile
from repro.obs.trace import spans_from_json_lines

DEFAULT_SQL = "SELECT * FROM Orders WHERE qty > 70"


def _cmd_record(args: argparse.Namespace) -> int:
    # Imported lazily: the viewer subcommands must not drag the whole
    # mediator stack in just to pretty-print a JSON file.
    from repro.bench.sharding import build_sharded_federation
    from repro.obs import ObservabilityOptions

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    mediator = build_sharded_federation(
        args.shards, args.rows, observability=ObservabilityOptions.all_on()
    )
    result = mediator.query(args.sql)
    telemetry = mediator.telemetry
    assert telemetry is not None
    profile = result.profile
    assert isinstance(profile, QueryProfile)

    (out_dir / "profile.json").write_text(profile.to_json() + "\n")
    (out_dir / "spans.jsonl").write_text(telemetry.tracer.to_json_lines() + "\n")
    document = chrome_trace(telemetry.tracer.roots)
    (out_dir / "trace.json").write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n"
    )
    assert telemetry.drift is not None and telemetry.metrics is not None
    (out_dir / "drift.json").write_text(telemetry.drift.snapshot_json() + "\n")
    (out_dir / "metrics.json").write_text(telemetry.metrics.snapshot_json() + "\n")
    (out_dir / "metrics.txt").write_text(telemetry.metrics.expose_text() + "\n")

    print(
        f"recorded 1 query over {args.shards} shards "
        f"({result.count} rows, {result.elapsed_ms:.1f} simulated ms) "
        f"into {out_dir}/"
    )
    print(
        "artifacts: profile.json spans.jsonl trace.json drift.json "
        "metrics.json metrics.txt"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = QueryProfile.from_json(Path(args.file).read_text())
    print(profile.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    roots = spans_from_json_lines(Path(args.file).read_text())
    document = chrome_trace(roots, tenant=args.tenant)
    text = json.dumps(document, indent=2, sort_keys=True, default=str)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(
            f"wrote {len(document['traceEvents'])} trace events to {args.out} "
            "(load in chrome://tracing or https://ui.perfetto.dev)"
        )
    else:
        print(text)
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    snapshot = json.loads(Path(args.file).read_text())
    print(render_drift_snapshot(snapshot))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    snapshot = json.loads(Path(args.file).read_text())
    print(exposition_from_snapshot(snapshot))
    return 0


def _load_calibration_state(path: str | None):
    from repro.mediator.calibration import CalibrationState

    if path and Path(path).exists():
        return CalibrationState.from_json(Path(path).read_text())
    return CalibrationState()


def _cmd_calibrate_fit(args: argparse.Namespace) -> int:
    # Lazy import for the same reason record uses one: pretty-printing a
    # JSON file must not require the calibration stack.
    from repro.mediator.calibration import CalibrationPolicy, Calibrator

    snapshot = json.loads(Path(args.drift).read_text())
    state = _load_calibration_state(args.state)
    policy = CalibrationPolicy(
        min_samples=args.min_samples,
        alpha=args.alpha,
        max_step=args.max_step,
        clamp_min=args.clamp_min,
        clamp_max=args.clamp_max,
        per_scope=args.per_scope,
    )
    fit = Calibrator(policy).fit(snapshot, state)
    if not fit.updates and not fit.skipped:
        print("nothing to fit: no wrapper-attributed drift rows in the window")
    for update in fit.updates:
        print(
            f"fit {update.key.as_string()}: "
            f"{update.previous:.4f} -> {update.proposed:.4f} "
            f"(measured ratio {update.measured_ratio:.4f}, "
            f"n={update.samples})"
        )
    for key, reason in sorted(fit.skipped.items()):
        print(f"skip {key}: {reason}")
    if args.apply:
        if fit.changed:
            overlay = state.apply(
                fit.updates,
                note=f"cli fit from {args.drift}",
                observations=fit.observations,
            )
            Path(args.state).write_text(state.to_json() + "\n")
            print(
                f"applied overlay v{overlay.version} "
                f"({len(fit.updates)} update(s)) to {args.state}"
            )
        else:
            print("no updates to apply; state file unchanged")
    elif fit.changed:
        print(f"(dry run: re-run with --apply to write {args.state})")
    return 0


def _cmd_calibrate_show(args: argparse.Namespace) -> int:
    from repro.mediator.calibration import (
        CalibrationState,
        render_calibration_state,
    )

    state = CalibrationState.from_json(Path(args.state).read_text())
    print(render_calibration_state(state))
    return 0


def _cmd_calibrate_rollback(args: argparse.Namespace) -> int:
    from repro.mediator.calibration import CalibrationState

    state = CalibrationState.from_json(Path(args.state).read_text())
    overlay = state.rollback(args.version)
    Path(args.state).write_text(state.to_json() + "\n")
    print(
        f"rolled back to v{overlay.version} "
        f"({len(overlay.multipliers)} coefficient(s)); wrote {args.state}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Flight-recorder ops: record, inspect and convert "
        "query telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run one profiled scatter query and write artifacts"
    )
    record.add_argument("--shards", type=int, default=3)
    record.add_argument("--rows", type=int, default=300)
    record.add_argument("--sql", default=DEFAULT_SQL)
    record.add_argument("--out-dir", default="obs-artifacts")
    record.set_defaults(func=_cmd_record)

    profile = sub.add_parser("profile", help="pretty-print a profile.json")
    profile.add_argument("file")
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace", help="convert spans.jsonl to a Chrome/Perfetto trace"
    )
    trace.add_argument("file")
    trace.add_argument("--out", default=None)
    trace.add_argument("--tenant", default=None)
    trace.set_defaults(func=_cmd_trace)

    drift = sub.add_parser("drift", help="render a drift.json q-error table")
    drift.add_argument("file")
    drift.set_defaults(func=_cmd_drift)

    metrics = sub.add_parser(
        "metrics", help="render a metrics.json as text exposition"
    )
    metrics.add_argument("file")
    metrics.set_defaults(func=_cmd_metrics)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit / inspect / roll back cost-calibration overlays",
    )
    calibrate_sub = calibrate.add_subparsers(dest="calibrate_command", required=True)

    fit = calibrate_sub.add_parser(
        "fit", help="fit coefficient updates from a drift.json window"
    )
    fit.add_argument("drift", help="drift snapshot JSON (DriftTracker.snapshot)")
    fit.add_argument(
        "--state",
        default="calibration.json",
        help="calibration state file (created on first --apply)",
    )
    fit.add_argument("--apply", action="store_true", help="write the overlay")
    fit.add_argument("--min-samples", type=int, default=8)
    fit.add_argument("--alpha", type=float, default=0.5)
    fit.add_argument("--max-step", type=float, default=2.0)
    fit.add_argument("--clamp-min", type=float, default=0.1)
    fit.add_argument("--clamp-max", type=float, default=10.0)
    fit.add_argument(
        "--per-scope",
        action="store_true",
        help="fit one coefficient per (wrapper, scope) instead of pooling",
    )
    fit.set_defaults(func=_cmd_calibrate_fit)

    show = calibrate_sub.add_parser(
        "show", help="print the overlay history of a calibration state file"
    )
    show.add_argument("state")
    show.set_defaults(func=_cmd_calibrate_show)

    rollback = calibrate_sub.add_parser(
        "rollback", help="re-activate a prior overlay version (0 = identity)"
    )
    rollback.add_argument("state")
    rollback.add_argument("version", type=int)
    rollback.set_defaults(func=_cmd_calibrate_rollback)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — a normal way to
        # consume CLI output, not an error.
        sys.stderr.close()
        sys.exit(0)
