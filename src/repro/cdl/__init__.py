"""The cost communication language (§3).

Wrappers describe their data sources — interfaces, statistics, wrapper
variables/functions, and cost rules — in this language; the mediator
compiles the document at registration time and blends the rules into its
cost model.

Public API::

    from repro.cdl import parse_document, compile_source, CompiledCostInfo
"""

from repro.cdl.cdl_ast import (
    AttributeDecl,
    AttributeStatsDecl,
    Document,
    ExtentStats,
    FunctionDef,
    InterfaceDef,
    OperationDecl,
    RuleDef,
    VarDecl,
)
from repro.cdl.compiler import CompiledCostInfo, compile_document, compile_source
from repro.cdl.lexer import Token, tokenize
from repro.cdl.parser import parse_document

__all__ = [
    "AttributeDecl",
    "AttributeStatsDecl",
    "CompiledCostInfo",
    "Document",
    "ExtentStats",
    "FunctionDef",
    "InterfaceDef",
    "OperationDecl",
    "RuleDef",
    "Token",
    "VarDecl",
    "compile_document",
    "compile_source",
    "parse_document",
    "tokenize",
]
