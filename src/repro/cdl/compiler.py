"""Compiler from parsed CDL documents to cost-model objects (§4.1).

"Integration consists of compiling the rules written by the wrapper
implementor and transmitting the results of compilation to the mediator."
This module is that compiler: it lowers a :class:`~repro.cdl.cdl_ast.Document`
into :class:`~repro.core.statistics.CollectionStats`,
:class:`~repro.core.rules.CostRule` objects (with formula bodies already
compiled to closures), wrapper variables, and wrapper functions — the
payload shipped to the mediator at registration.

Binding resolution for rule heads follows a simple, predictable policy:

* a **collection argument** is bound iff its name is declared as an
  ``interface`` in the same document (or passed via ``known_collections``);
  any other identifier is a free variable — so ``select(Collection, ...)``
  in Figure 13 has a free ``Collection`` exactly as the paper intends;
* an **attribute position** is bound iff the name is a declared attribute
  of some interface in scope; ``Id`` binds when the document declares it,
  ``A`` stays free;
* a **value position** is bound iff it is a literal; identifiers are free
  variables (``V``, ``value``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cdl.cdl_ast import Document, HeadArg, InterfaceDef, RuleDef
from repro.cdl.parser import parse_document
from repro.core.formulas import (
    BUILTIN_FUNCTIONS,
    MappingContext,
    Value,
    parse_expression,
    parse_formula,
)
from repro.core.rules import (
    AnyPredicate,
    CollectionArg,
    CostRule,
    JoinPredPattern,
    OperatorPattern,
    PATTERN_OPERATORS,
    SelectPredPattern,
    Var,
)
from repro.core.statistics import AttributeStats, CollectionStats
from repro.errors import CdlCompileError, FormulaError


@dataclass
class CompiledCostInfo:
    """Everything a CDL document exports, ready for mediator registration."""

    statistics: list[CollectionStats] = field(default_factory=list)
    rules: list[CostRule] = field(default_factory=list)
    variables: dict[str, Value] = field(default_factory=dict)
    functions: dict[str, Callable[..., Value]] = field(default_factory=dict)
    schema: dict[str, InterfaceDef] = field(default_factory=dict)

    def collection_names(self) -> list[str]:
        return sorted(self.schema)


def compile_document(
    document: Document,
    known_collections: set[str] | None = None,
    known_attributes: set[str] | None = None,
) -> CompiledCostInfo:
    """Lower a parsed document.  Extra ``known_*`` names extend binding
    resolution beyond the document's own interfaces (useful when cost rules
    are registered separately from the schema)."""
    compiler = _Compiler(document, known_collections or set(), known_attributes or set())
    return compiler.run()


def compile_source(source: str, **kwargs) -> CompiledCostInfo:
    """Parse and compile CDL source text in one step."""
    return compile_document(parse_document(source), **kwargs)


class _Compiler:
    def __init__(
        self,
        document: Document,
        known_collections: set[str],
        known_attributes: set[str],
    ) -> None:
        self.document = document
        self.collections = document.collection_names() | known_collections
        self.attributes = set(known_attributes)
        for interface in document.interfaces:
            self.attributes.update(interface.attribute_names())
            self.attributes.update(s.attribute for s in interface.attribute_stats)

    def run(self) -> CompiledCostInfo:
        result = CompiledCostInfo()
        for interface in self.document.interfaces:
            result.schema[interface.name] = interface
            stats = self._collection_stats(interface)
            if stats is not None:
                result.statistics.append(stats)
        for declaration in self.document.variables:
            result.variables[declaration.name] = declaration.value
        for definition in self.document.functions:
            result.functions[definition.name] = self._compile_function(
                definition.name,
                definition.parameters,
                definition.body,
                result.variables,
                result.functions,
            )
        for index, rule_def in enumerate(self.document.rules):
            result.rules.append(self._compile_rule(rule_def, index))
        return result

    # -- statistics ----------------------------------------------------------

    def _collection_stats(self, interface: InterfaceDef) -> CollectionStats | None:
        if interface.extent is None:
            return None
        extent = interface.extent
        object_size = extent.object_size
        total_size = extent.total_size
        if total_size is None and object_size is not None:
            total_size = extent.count_object * object_size
        if object_size is None and total_size is not None:
            object_size = total_size // max(1, extent.count_object)
        if total_size is None:
            raise CdlCompileError(
                f"interface {interface.name}: extent needs TotalSize or ObjectSize"
            )
        stats = CollectionStats(
            name=interface.name,
            count_object=extent.count_object,
            total_size=int(total_size),
            object_size=int(object_size or 0),
        )
        declared = {d.attribute for d in interface.attribute_stats}
        for decl in interface.attribute_stats:
            stats.add_attribute(
                AttributeStats(
                    name=decl.attribute,
                    indexed=decl.indexed,
                    count_distinct=decl.count_distinct,
                    min_value=decl.min_value,  # type: ignore[arg-type]
                    max_value=decl.max_value,  # type: ignore[arg-type]
                )
            )
        for attribute in interface.attributes:
            if attribute.name not in declared:
                stats.add_attribute(AttributeStats(name=attribute.name))
        return stats

    # -- functions -------------------------------------------------------------

    def _compile_function(
        self,
        name: str,
        parameters: list[str],
        body: str,
        variables: dict[str, Value],
        functions: dict[str, Callable[..., Value]],
    ) -> Callable[..., Value]:
        try:
            expression = parse_expression(body).compile()
        except FormulaError as exc:
            raise CdlCompileError(f"function {name}: {exc}") from exc
        function_table = dict(BUILTIN_FUNCTIONS)
        function_table.update(functions)  # earlier definitions visible

        def call(*args: Value) -> Value:
            if len(args) != len(parameters):
                raise FormulaError(
                    f"function {name} expects {len(parameters)} argument(s), "
                    f"got {len(args)}"
                )
            values: dict[str, Value] = dict(variables)
            values.update(zip(parameters, args))
            return expression(MappingContext(values, function_table))

        call.__name__ = name
        return call

    # -- rules -------------------------------------------------------------------

    def _compile_rule(self, rule_def: RuleDef, index: int) -> CostRule:
        if rule_def.operator not in PATTERN_OPERATORS:
            raise CdlCompileError(
                f"line {rule_def.line}: unknown operator {rule_def.operator!r} "
                f"(expected one of {sorted(PATTERN_OPERATORS)})"
            )
        head_collections = list(rule_def.collections)
        trailing_predicate_var: str | None = None
        expected = 2 if rule_def.operator in ("join", "union") else 1
        if (
            rule_def.predicate is None
            and len(head_collections) == expected + 1
            and head_collections[-1].kind == "name"
            and str(head_collections[-1].value) not in self.collections
        ):
            # ``select(C, P)`` / ``join(C1, C2, P)``: a trailing free name
            # is a whole-predicate variable, not a collection.
            trailing_predicate_var = str(head_collections.pop().value)
        collections = tuple(self._collection_arg(arg) for arg in head_collections)
        predicate = self._predicate_pattern(rule_def)
        if trailing_predicate_var is not None:
            predicate = AnyPredicate(Var(trailing_predicate_var))
        try:
            pattern = OperatorPattern(rule_def.operator, collections, predicate)
        except Exception as exc:
            raise CdlCompileError(f"line {rule_def.line}: {exc}") from exc
        formulas = []
        for text in rule_def.formulas:
            try:
                formulas.append(parse_formula(text))
            except FormulaError as exc:
                raise CdlCompileError(f"line {rule_def.line}: {exc}") from exc
        if not formulas:
            raise CdlCompileError(
                f"line {rule_def.line}: cost rule {pattern} has an empty body"
            )
        return CostRule(head=pattern, formulas=formulas, name=str(pattern), order=index)

    def _collection_arg(self, arg: HeadArg) -> CollectionArg:
        if arg.kind == "literal":
            return str(arg.value)
        name = str(arg.value)
        if name in self.collections:
            return name
        return Var(name)

    def _attribute_arg(self, arg: HeadArg) -> str | Var:
        name = str(arg.value)
        if arg.kind == "literal" or name in self.attributes:
            return name
        return Var(name)

    def _value_arg(self, arg: HeadArg):
        if arg.kind == "literal":
            return arg.value
        return Var(str(arg.value))

    def _predicate_pattern(self, rule_def: RuleDef):
        head_pred = rule_def.predicate
        if head_pred is None:
            # An omitted predicate means "any predicate" for operators that
            # carry one; the pattern machinery handles operators without
            # predicates through a None pattern.
            if rule_def.operator == "select":
                return AnyPredicate(Var("P"))
            if rule_def.operator == "join":
                return None
            return None
        if rule_def.operator == "join":
            if head_pred.op != "=":
                raise CdlCompileError(
                    f"line {rule_def.line}: join predicates must use '='"
                )
            return JoinPredPattern(
                self._attribute_arg(head_pred.left),
                self._attribute_arg(head_pred.right),
            )
        if rule_def.operator == "select":
            return SelectPredPattern(
                self._attribute_arg(head_pred.left),
                head_pred.op,
                self._value_arg(head_pred.right),
            )
        raise CdlCompileError(
            f"line {rule_def.line}: operator {rule_def.operator!r} takes no predicate"
        )
