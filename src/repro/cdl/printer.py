"""Pretty-printer for CDL documents.

Renders a parsed :class:`~repro.cdl.cdl_ast.Document` back to source text
that re-parses to an equivalent document (round-trip property, checked by
``tests/cdl/test_printer.py``).  Used by tooling that manipulates wrapper
exports — e.g. an administrator dumping the registered cost information
of a source for inspection or editing before re-registration (§2.1's
administrative interface).
"""

from __future__ import annotations

from repro.cdl.cdl_ast import (
    AttributeStatsDecl,
    Document,
    ExtentStats,
    FunctionDef,
    HeadArg,
    InterfaceDef,
    LiteralValue,
    RuleDef,
    VarDecl,
)


def _literal(value: LiteralValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def _head_arg(arg: HeadArg) -> str:
    if arg.kind == "literal":
        return _literal(arg.value)
    return str(arg.value)


def print_extent(extent: ExtentStats) -> str:
    parts = [f"CountObject = {extent.count_object}"]
    if extent.total_size is not None:
        parts.append(f"TotalSize = {extent.total_size}")
    if extent.object_size is not None:
        parts.append(f"ObjectSize = {extent.object_size}")
    return f"    cardinality extent({', '.join(parts)});"


def print_attribute_stats(decl: AttributeStatsDecl) -> str:
    parts = [decl.attribute]
    parts.append(f"Indexed = {_literal(decl.indexed)}")
    if decl.count_distinct is not None:
        parts.append(f"CountDistinct = {decl.count_distinct}")
    if decl.min_value is not None:
        parts.append(f"Min = {_literal(decl.min_value)}")
    if decl.max_value is not None:
        parts.append(f"Max = {_literal(decl.max_value)}")
    return f"    cardinality attribute({', '.join(parts)});"


def print_interface(interface: InterfaceDef) -> str:
    lines = [f"interface {interface.name} {{"]
    for attribute in interface.attributes:
        lines.append(f"    attribute {attribute.type_name} {attribute.name};")
    for operation in interface.operations:
        params = ", ".join(
            f"{direction} {type_name} {name}"
            for direction, type_name, name in operation.parameters
        )
        lines.append(f"    {operation.return_type} {operation.name}({params});")
    if interface.extent is not None:
        lines.append(print_extent(interface.extent))
    for decl in interface.attribute_stats:
        lines.append(print_attribute_stats(decl))
    lines.append("}")
    return "\n".join(lines)


def print_rule(rule_def: RuleDef) -> str:
    args = [_head_arg(arg) for arg in rule_def.collections]
    if rule_def.predicate is not None:
        predicate = rule_def.predicate
        args.append(
            f"{_head_arg(predicate.left)} {predicate.op} {_head_arg(predicate.right)}"
        )
    lines = [f"costrule {rule_def.operator}({', '.join(args)}) {{"]
    for formula in rule_def.formulas:
        lines.append(f"    {formula};")
    lines.append("}")
    return "\n".join(lines)


def print_var(declaration: VarDecl) -> str:
    return f"var {declaration.name} = {_literal(declaration.value)};"


def print_function(definition: FunctionDef) -> str:
    params = ", ".join(definition.parameters)
    return f"function {definition.name}({params}) = {definition.body};"


def print_document(document: Document) -> str:
    """Render a whole document in declaration order by section."""
    sections: list[str] = []
    for interface in document.interfaces:
        sections.append(print_interface(interface))
    for declaration in document.variables:
        sections.append(print_var(declaration))
    for definition in document.functions:
        sections.append(print_function(definition))
    for rule_def in document.rules:
        sections.append(print_rule(rule_def))
    return "\n\n".join(sections) + ("\n" if sections else "")
