"""Tokenizer for the cost communication language (§3).

The language is a subset of CORBA IDL (Figure 3) extended with the
``cardinality`` section of Figure 5 and the cost-rule grammar of Figure 9,
plus ``var``/``function`` declarations (§3.3.1: "wrapper implementors may
define their own local variables or functions").  ``//`` line comments and
``/* */`` block comments are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CdlSyntaxError

#: Keywords of the language (case-sensitive, like IDL).
KEYWORDS = frozenset(
    {
        "interface",
        "attribute",
        "cardinality",
        "extent",
        "costrule",
        "var",
        "function",
        "in",
        "out",
        "true",
        "false",
    }
)

#: Multi-character punctuation, longest first.
_MULTI_PUNCT = ("<=", ">=", "!=")
_SINGLE_PUNCT = set("{}(),;=.+-*/<>")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # 'ident', 'keyword', 'number', 'string', or the punct itself
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r} @{self.line}:{self.column})"


class Lexer:
    """Converts CDL source text into a token list ending in an 'eof' token."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> CdlSyntaxError:
        return CdlSyntaxError(message, self.line, self.column)

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token("eof", "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self.error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        if char.isalpha() or char == "_":
            return self._ident(line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if char in ("'", '"'):
            return self._string(line, column)
        for punct in _MULTI_PUNCT:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(punct, punct, line, column)
        if char in _SINGLE_PUNCT:
            self._advance()
            return Token(char, char, line, column)
        raise self.error(f"unexpected character {char!r}")

    def _ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.source):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            elif char in "eE" and self._peek(1).isdigit():
                self._advance(2)
            elif char in "eE" and self._peek(1) in "+-" and self._peek(2).isdigit():
                self._advance(3)
            else:
                break
        return Token("number", self.source[start : self.pos], line, column)

    def _string(self, line: int, column: int) -> Token:
        quote = self._advance()
        start = self.pos
        while self.pos < len(self.source) and self._peek() != quote:
            if self._peek() == "\n":
                raise self.error("newline inside string literal")
            self._advance()
        if self.pos >= len(self.source):
            raise self.error("unterminated string literal")
        text = self.source[start : self.pos]
        self._advance()  # closing quote
        return Token("string", text, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize CDL source text."""
    return Lexer(source).tokenize()
