"""Recursive-descent parser for the cost communication language.

Implements the extended interface-body BNF of Figure 5 plus the cost-rule
grammar of Figure 9.  Differences from the paper's figures, all
conservative and documented:

* The ``cardinality`` methods are *declarative*: instead of IDL method
  signatures whose implementations (Figure 6) return the values, the
  document states the values directly —
  ``cardinality extent(CountObject = 10000, ...)``.  This carries exactly
  the same information across the same interface boundary.
* Rule-head predicates accept all six comparison operators, not only
  ``=`` (needed to express range-selection rules like Figure 13's).
* ``var`` and ``function`` declarations realize §3.3.1's wrapper-defined
  variables and functions within the language itself.

Formula bodies are captured as raw text and compiled by
:mod:`repro.core.formulas` (one parser for formulas everywhere).
"""

from __future__ import annotations

from repro.cdl.cdl_ast import (
    AttributeDecl,
    AttributeStatsDecl,
    Document,
    ExtentStats,
    FunctionDef,
    HeadArg,
    HeadPredicate,
    InterfaceDef,
    LiteralValue,
    OperationDecl,
    RuleDef,
    VarDecl,
)
from repro.cdl.lexer import Token, tokenize
from repro.errors import CdlSyntaxError

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    """Parses one CDL document."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> CdlSyntaxError:
        token = token or self._peek()
        return CdlSyntaxError(message, token.line, token.column)

    def _expect(self, kind: str, what: str = "") -> Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(
                f"expected {what or kind!r} but found {token.text!r}", token
            )
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if token.kind != "keyword" or token.text != word:
            raise self._error(f"expected {word!r} but found {token.text!r}", token)
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text == word

    def _ident(self, what: str = "identifier") -> str:
        token = self._next()
        # Statistic names like CountObject are plain identifiers; keywords
        # such as `attribute` are valid member names in stats positions, so
        # accept both identifier and keyword tokens where a name is needed.
        if token.kind not in ("ident", "keyword"):
            raise self._error(f"expected {what} but found {token.text!r}", token)
        return token.text

    # -- entry point ------------------------------------------------------------

    def parse_document(self) -> Document:
        document = Document()
        while self._peek().kind != "eof":
            if self._at_keyword("interface"):
                document.interfaces.append(self._interface())
            elif self._at_keyword("costrule"):
                document.rules.append(self._costrule())
            elif self._at_keyword("var"):
                document.variables.append(self._var_decl())
            elif self._at_keyword("function"):
                document.functions.append(self._function_def())
            else:
                raise self._error(
                    f"expected a declaration but found {self._peek().text!r}"
                )
        return document

    # -- interfaces --------------------------------------------------------------

    def _interface(self) -> InterfaceDef:
        self._expect_keyword("interface")
        name = self._ident("interface name")
        self._expect("{")
        interface = InterfaceDef(name=name)
        while self._peek().kind != "}":
            if self._at_keyword("attribute"):
                self._next()
                type_name = self._ident("attribute type")
                attr_name = self._ident("attribute name")
                self._expect(";")
                interface.attributes.append(AttributeDecl(attr_name, type_name))
            elif self._at_keyword("cardinality"):
                self._next()
                self._cardinality(interface)
            else:
                interface.operations.append(self._operation())
        self._expect("}")
        return interface

    def _operation(self) -> OperationDecl:
        return_type = self._ident("operation return type")
        name = self._ident("operation name")
        self._expect("(")
        parameters: list[tuple[str, str, str]] = []
        if self._peek().kind != ")":
            parameters.append(self._parameter())
            while self._peek().kind == ",":
                self._next()
                parameters.append(self._parameter())
        self._expect(")")
        self._expect(";")
        return OperationDecl(name, return_type, tuple(parameters))

    def _parameter(self) -> tuple[str, str, str]:
        direction = "in"
        if self._at_keyword("in") or self._at_keyword("out"):
            direction = self._next().text
        type_name = self._ident("parameter type")
        name = self._ident("parameter name")
        return (direction, type_name, name)

    def _cardinality(self, interface: InterfaceDef) -> None:
        token = self._peek()
        if self._at_keyword("extent"):
            self._next()
            interface.extent = self._extent_stats()
        elif self._at_keyword("attribute"):
            self._next()
            interface.attribute_stats.append(self._attribute_stats())
        else:
            raise self._error(
                f"cardinality section must be 'extent' or 'attribute', "
                f"found {token.text!r}",
                token,
            )

    def _extent_stats(self) -> ExtentStats:
        values = self._assignment_list()
        self._expect(";")
        if "CountObject" not in values:
            raise self._error("extent statistics require CountObject")
        count_object = int(values["CountObject"])  # type: ignore[arg-type]
        total_size = values.get("TotalSize")
        object_size = values.get("ObjectSize")
        return ExtentStats(
            count_object=count_object,
            total_size=None if total_size is None else int(total_size),  # type: ignore[arg-type]
            object_size=None if object_size is None else int(object_size),  # type: ignore[arg-type]
        )

    def _attribute_stats(self) -> AttributeStatsDecl:
        self._expect("(")
        attribute = self._ident("attribute name")
        values: dict[str, LiteralValue] = {}
        while self._peek().kind == ",":
            self._next()
            key = self._ident("statistic name")
            self._expect("=")
            values[key] = self._literal()
        self._expect(")")
        self._expect(";")
        unknown = set(values) - {"Indexed", "CountDistinct", "Min", "Max"}
        if unknown:
            raise self._error(f"unknown attribute statistics {sorted(unknown)}")
        count_distinct = values.get("CountDistinct")
        return AttributeStatsDecl(
            attribute=attribute,
            indexed=bool(values.get("Indexed", False)),
            count_distinct=None if count_distinct is None else int(count_distinct),  # type: ignore[arg-type]
            min_value=values.get("Min"),
            max_value=values.get("Max"),
        )

    def _assignment_list(self) -> dict[str, LiteralValue]:
        self._expect("(")
        values: dict[str, LiteralValue] = {}
        if self._peek().kind != ")":
            while True:
                key = self._ident("statistic name")
                self._expect("=")
                values[key] = self._literal()
                if self._peek().kind != ",":
                    break
                self._next()
        self._expect(")")
        return values

    def _literal(self) -> LiteralValue:
        token = self._next()
        if token.kind == "number":
            value = float(token.text)
            return int(value) if value.is_integer() else value
        if token.kind == "string":
            return token.text
        if token.kind == "keyword" and token.text in ("true", "false"):
            return token.text == "true"
        if token.kind == "-" and self._peek().kind == "number":
            number = self._next()
            value = -float(number.text)
            return int(value) if value.is_integer() else value
        raise self._error(f"expected a literal but found {token.text!r}", token)

    # -- variables and functions ------------------------------------------------------

    def _var_decl(self) -> VarDecl:
        self._expect_keyword("var")
        name = self._ident("variable name")
        self._expect("=")
        value = self._literal()
        self._expect(";")
        return VarDecl(name, value)

    def _function_def(self) -> FunctionDef:
        self._expect_keyword("function")
        name = self._ident("function name")
        self._expect("(")
        parameters: list[str] = []
        if self._peek().kind != ")":
            parameters.append(self._ident("parameter name"))
            while self._peek().kind == ",":
                self._next()
                parameters.append(self._ident("parameter name"))
        self._expect(")")
        self._expect("=")
        body = self._raw_expression_until(";")
        self._expect(";")
        return FunctionDef(name, parameters, body)

    # -- cost rules ---------------------------------------------------------------------

    def _costrule(self) -> RuleDef:
        start = self._expect_keyword("costrule")
        operator = self._ident("operator name")
        self._expect("(")
        collections: list[HeadArg] = []
        predicate: HeadPredicate | None = None
        if self._peek().kind != ")":
            while True:
                arg = self._head_arg()
                if self._peek().kind in _COMPARISON_OPS:
                    op = self._next().kind
                    right = self._head_arg()
                    predicate = HeadPredicate(arg, op, right)
                    break
                collections.append(arg)
                if self._peek().kind != ",":
                    break
                self._next()
        self._expect(")")
        self._expect("{")
        formulas: list[str] = []
        while self._peek().kind != "}":
            formulas.append(self._formula_text())
        self._expect("}")
        return RuleDef(
            operator=operator,
            collections=collections,
            predicate=predicate,
            formulas=formulas,
            line=start.line,
        )

    def _head_arg(self) -> HeadArg:
        token = self._peek()
        if token.kind in ("number", "string") or (
            token.kind == "keyword" and token.text in ("true", "false")
        ):
            return HeadArg("literal", self._literal())
        if token.kind == "-":
            return HeadArg("literal", self._literal())
        name = self._ident("head argument")
        # Dotted spellings like x1.id keep only the final attribute name.
        while self._peek().kind == ".":
            self._next()
            name = self._ident("attribute name")
        return HeadArg("name", name)

    def _formula_text(self) -> str:
        target = self._ident("formula target")
        self._expect("=")
        body = self._raw_expression_until(";")
        self._expect(";")
        return f"{target} = {body}"

    def _raw_expression_until(self, terminator: str) -> str:
        """Reassemble token texts (re-quoting strings) until ``terminator``."""
        pieces: list[str] = []
        depth = 0
        while True:
            token = self._peek()
            if token.kind == "eof":
                raise self._error(f"expected {terminator!r} before end of input")
            if token.kind == terminator and depth == 0:
                break
            if token.kind == "(":
                depth += 1
            elif token.kind == ")":
                if depth == 0:
                    raise self._error("unbalanced ')' in formula")
                depth -= 1
            self._next()
            if token.kind == "string":
                pieces.append(f"'{token.text}'")
            elif token.kind == ".":
                # Glue path separators tightly so 'a . b' stays a path.
                pieces.append(".")
            else:
                pieces.append(token.text)
        text = ""
        for piece in pieces:
            if piece == "." or text.endswith("."):
                text += piece
            elif text:
                text += " " + piece
            else:
                text = piece
        return text


def parse_document(source: str) -> Document:
    """Parse CDL source text into a :class:`Document`."""
    return Parser(source).parse_document()
