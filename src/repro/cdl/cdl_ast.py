"""AST node definitions for the cost communication language.

A parsed document (:class:`Document`) carries everything a wrapper exports
at registration time (§2.1 Step 2): interface definitions with statistics
(Figures 3–6), wrapper variables and functions (§3.3.1), and cost rules
(Figures 8, 9, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

#: Literal values appearing in CDL source.
LiteralValue = Union[float, int, str, bool]


@dataclass(frozen=True)
class AttributeDecl:
    """``attribute <type> <name>;`` inside an interface (Figure 3)."""

    name: str
    type_name: str


@dataclass(frozen=True)
class OperationDecl:
    """``<return-type> <name>(<params>);`` inside an interface.

    Parameters are kept as raw ``(direction, type, name)`` triples; the
    mediator only needs the operation names for capability reporting.
    """

    name: str
    return_type: str
    parameters: tuple[tuple[str, str, str], ...] = ()


@dataclass
class ExtentStats:
    """``cardinality extent(CountObject = ..., TotalSize = ...,
    ObjectSize = ...);`` — the declarative realization of the paper's
    ``extent`` method (Figures 4–6)."""

    count_object: int
    total_size: int | None = None
    object_size: int | None = None


@dataclass
class AttributeStatsDecl:
    """``cardinality attribute(<name>, Indexed = ..., CountDistinct = ...,
    Min = ..., Max = ...);`` — the declarative ``attribute`` method."""

    attribute: str
    indexed: bool = False
    count_distinct: int | None = None
    min_value: LiteralValue | None = None
    max_value: LiteralValue | None = None


@dataclass
class InterfaceDef:
    """One ``interface <Name> { ... }`` block."""

    name: str
    attributes: list[AttributeDecl] = field(default_factory=list)
    operations: list[OperationDecl] = field(default_factory=list)
    extent: ExtentStats | None = None
    attribute_stats: list[AttributeStatsDecl] = field(default_factory=list)

    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]


@dataclass(frozen=True)
class HeadArg:
    """One argument of a rule head before binding resolution.

    ``kind`` is ``'name'`` for an identifier and ``'literal'`` for a
    quoted string or number.  Whether a name is a bound collection /
    attribute or a free variable is decided by the compiler against the
    document's interfaces (see :mod:`repro.cdl.compiler`).
    """

    kind: str
    value: LiteralValue


@dataclass(frozen=True)
class HeadPredicate:
    """``<lhs> <op> <rhs>`` in a rule head (sel pred or join pred)."""

    left: HeadArg
    op: str
    right: HeadArg


@dataclass
class RuleDef:
    """``costrule <operator>(<args>) { <formulas> }``."""

    operator: str
    collections: list[HeadArg]
    predicate: HeadPredicate | None
    formulas: list[str]  # raw "Target = expr" texts, compiled later
    line: int = 0


@dataclass
class VarDecl:
    """``var <Name> = <literal>;`` — a wrapper parameter (e.g. PageSize)."""

    name: str
    value: LiteralValue


@dataclass
class FunctionDef:
    """``function <name>(<params>) = <expression>;`` — a pure wrapper
    function usable from cost formulas."""

    name: str
    parameters: list[str]
    body: str


@dataclass
class Document:
    """A complete parsed CDL document."""

    interfaces: list[InterfaceDef] = field(default_factory=list)
    rules: list[RuleDef] = field(default_factory=list)
    variables: list[VarDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)

    def interface(self, name: str) -> InterfaceDef | None:
        for item in self.interfaces:
            if item.name == name:
                return item
        return None

    def collection_names(self) -> set[str]:
        return {item.name for item in self.interfaces}
