"""Run the OO7-style query workload [CDN93] through the mediator.

Loads the full OO7 database (tiny or small scale) behind the object-store
wrapper and executes the adapted OO7 query set (exact-match lookups Q1,
range selections Q2/Q3, the full ordered scan Q7, document/assembly joins
Q4/Q5, and the part–document join count Q8), printing per-query estimated
vs measured response times and checking each answer against its expected
row count.

Run:  python examples/oo7_benchmark.py [--small]
"""

import sys

from repro import Mediator, ObjectStoreWrapper
from repro.oo7 import SMALL, TINY, load_database
from repro.oo7.workload import build_workload

SEED = 7


def main() -> None:
    config = SMALL if "--small" in sys.argv else TINY
    print(
        f"loading OO7 '{config.name}' "
        f"({config.num_atomic_parts} atomic parts) ..."
    )
    mediator = Mediator()
    mediator.register(ObjectStoreWrapper("oo7", load_database(config, SEED)))
    workload = build_workload(config, SEED)

    print(f"\n{'query':<6} {'rows':>7} {'expected':>8} "
          f"{'estimated (ms)':>15} {'measured (ms)':>14}  ok")
    total_estimated = total_measured = 0.0
    for query in workload:
        optimized = mediator.plan(query.sql)
        result = mediator.query(query.sql)
        ok = "yes" if result.count == query.expected_rows else "NO"
        print(
            f"{query.label:<6} {result.count:>7} {query.expected_rows:>8} "
            f"{optimized.estimated_total_ms:>15,.0f} "
            f"{result.elapsed_ms:>14,.0f}  {ok}"
        )
        total_estimated += optimized.estimated_total_ms
        total_measured += result.elapsed_ms
    print(
        f"{'TOTAL':<6} {'':>7} {'':>8} {total_estimated:>15,.0f} "
        f"{total_measured:>14,.0f}"
    )


if __name__ == "__main__":
    main()
