"""The full heterogeneous federation of the paper's introduction.

Four sources of radically different character behind one mediator:

* ``oo7``   — an object database (slow disk, rich cost rules);
* ``sales`` — a relational engine (statistics only);
* ``api``   — a remote service with 800 ms round trips (latency rules);
* ``files`` — a flat file that exports nothing at all.

The example runs the same workload under the three cost-model
configurations (generic / calibrated / blended) and prints, per query,
the actual execution time of the plan each configuration chose, plus the
estimation error — a miniature of experiments E2/E3.

Run:  python examples/heterogeneous_federation.py
"""

from repro.bench.federation import (
    MODELS,
    WORKLOAD,
    build_engines,
    build_mediator,
)


def main() -> None:
    print("building the federation (OO7 small: 10 000 atomic parts)...")
    print(f"{'query':<12}", end="")
    for model in MODELS:
        print(f"  {model + ' act/est (ms)':>28}", end="")
    print()

    mediators = {}
    for model in MODELS:
        engines = build_engines()
        mediators[model] = build_mediator(model, engines)

    for label, sql in WORKLOAD:
        print(f"{label:<12}", end="")
        for model in MODELS:
            result = mediators[model].query(sql)
            print(
                f"  {result.elapsed_ms:>13,.0f}/{result.estimated_ms:<14,.0f}",
                end="",
            )
        print()

    print("\nthe blended configuration's explain for the local join:")
    print(
        mediators["blended"].explain(
            "SELECT * FROM Orders, Suppliers "
            "WHERE Orders.supplier = Suppliers.sid AND Suppliers.city = 'city0'"
        )
    )


if __name__ == "__main__":
    main()
