"""Quickstart: a two-source federation in ~60 lines.

Builds a mediator over an object store (which exports Yao cost rules) and
a relational source (statistics only), runs SQL against the global
schema, and shows the blended cost model at work via ``explain``.

Run:  python examples/quickstart.py
"""

from repro import Mediator, ObjectStoreWrapper, RelationalWrapper
from repro.oo7 import TINY, load_database
from repro.sources.relationaldb import RelationalDatabase


def build_mediator() -> Mediator:
    mediator = Mediator()

    # Source 1: the OO7 object database behind an ObjectStore-style
    # wrapper.  At registration it exports statistics *and* cost rules
    # (the Figure 13 Yao formula, generated from its physical layout).
    oo7 = ObjectStoreWrapper("oo7", load_database(TINY))
    rules = mediator.register(oo7)
    print(f"registered wrapper 'oo7' ({rules} cost rules imported)")

    # Source 2: a relational engine that exports only statistics — the
    # mediator costs it with the generic model.
    sales_db = RelationalDatabase()
    sales_db.create_table(
        "Suppliers",
        [
            {"sid": i, "partType": f"type{i % 10:03d}", "city": f"city{i % 5}"}
            for i in range(50)
        ],
        row_size=40,
        indexed_columns=["sid"],
    )
    rules = mediator.register(RelationalWrapper("sales", sales_db))
    print(f"registered wrapper 'sales' ({rules} cost rules imported)")
    return mediator


def main() -> None:
    mediator = build_mediator()
    print("\ncatalog:")
    print(mediator.catalog.describe())

    # A single-source query: the wrapper's index rules price the lookup.
    sql = "SELECT Id, type FROM AtomicParts WHERE Id = 42"
    result = mediator.query(sql)
    print(f"\n{sql}")
    print(f"  -> {result.rows}")
    print(
        f"  estimated {result.estimated_ms:.1f} ms, "
        f"measured {result.elapsed_ms:.1f} ms (simulated)"
    )

    # A cross-source join: each side becomes a subquery (Submit) to its
    # wrapper; the mediator composes the answers.
    sql = (
        "SELECT * FROM AtomicParts, Suppliers "
        "WHERE AtomicParts.type = Suppliers.partType "
        "AND Suppliers.city = 'city1' AND AtomicParts.Id < 50"
    )
    result = mediator.query(sql)
    print(f"\n{sql}")
    print(f"  -> {result.count} rows, measured {result.elapsed_ms:.1f} ms")

    # explain() shows which scope produced every estimate — the blending.
    print("\nexplain:")
    print(mediator.explain("SELECT * FROM AtomicParts WHERE Id = 42"))


if __name__ == "__main__":
    main()
