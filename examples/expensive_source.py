"""The paper's closing scenario (§7): an expensive multimedia source.

"In environments with data sources of different functionalities ... the
problem of cost evaluation is crucial, for example to avoid processing a
large number of images by first selecting a few images from other data
source."

This example builds that environment — an image library where producing
one object costs 80 simulated milliseconds, plus a cheap tag catalog —
and shows the mediator choosing a **bind join**: fetch the few matching
tags first, then probe the image library with just those keys through its
index, instead of shipping all 2000 images.

Run:  python examples/expensive_source.py
"""

from repro.algebra.logical import BindJoin
from repro.bench.bindjoin_bench import bind_plan, build_mediator, classic_plan


def main() -> None:
    mediator = build_mediator()
    sql = (
        "SELECT * FROM Tags, Images "
        "WHERE Tags.tagged = Images.img AND Tags.weight < 25"
    )
    print("query:", sql)

    optimized = mediator.plan(sql)
    uses_bind = any(isinstance(n, BindJoin) for n in optimized.plan.walk())
    print(f"\noptimizer chose a {'BIND' if uses_bind else 'classic'} join:")
    print(optimized.plan.pretty())

    result = mediator.query(sql)
    print(
        f"\n{result.count} rows; estimated {result.estimated_ms:,.0f} ms, "
        f"measured {result.elapsed_ms:,.0f} ms (simulated)"
    )

    # What the classic plan would have cost:
    classic = classic_plan(25)
    classic_ms = mediator.executor.execute(classic).total_time_ms
    print(f"the classic ship-everything plan measures {classic_ms:,.0f} ms")
    print(f"-> bind join speedup: {classic_ms / result.elapsed_ms:,.0f}x")

    # The cost annotations behind the decision:
    print("\nexplain (abridged):")
    for line in mediator.explain(sql).splitlines()[:8]:
        print(" ", line)


if __name__ == "__main__":
    main()
