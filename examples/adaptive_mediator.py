"""Historical costs in action (§4.3.1): a mediator that learns.

A source registers *without* cost rules and with generic coefficients
tuned for a much faster class of system, so initial estimates are badly
off.  Two adaptation mechanisms then kick in:

1. **query-scope recording** — after a subquery runs once, its next
   estimate is the measured cost, exactly;
2. **parameter adjustment** — an :class:`OnlineCalibrator` folds every
   (estimate, measurement) pair into one per-source factor, improving
   estimates for queries that were *never* executed before.

Run:  python examples/adaptive_mediator.py
"""

import random

from repro import Mediator, ObjectStoreWrapper
from repro.core.generic import GenericCoefficients
from repro.core.history import OnlineCalibrator
from repro.oo7 import TINY, load_database


def build() -> Mediator:
    mediator = Mediator(record_history=True)
    # Deliberately mis-calibrated generic model (4x too optimistic).
    mediator.coefficients.default = GenericCoefficients().scaled(0.25)
    mediator.register(
        ObjectStoreWrapper("oo7", load_database(TINY), export_rules=False)
    )
    return mediator


def relative_error(estimated: float, actual: float) -> float:
    return abs(estimated - actual) / actual


def main() -> None:
    mediator = build()
    calibrator = OnlineCalibrator()
    rng = random.Random(17)

    print("phase 1 — the same subquery, repeated:")
    sql = "SELECT * FROM AtomicParts WHERE Id <= 60"
    for run in range(1, 4):
        estimated = mediator.plan(sql).estimated_total_ms
        result = mediator.query(sql)
        print(
            f"  run {run}: estimated {estimated:9.1f} ms, "
            f"measured {result.elapsed_ms:9.1f} ms "
            f"(error {relative_error(estimated, result.elapsed_ms):5.1%})"
        )
    print("  -> after one execution the query-scope rule makes it exact.\n")

    print("phase 2 — ten different range queries, observed by the calibrator:")
    for _ in range(10):
        constant = rng.randrange(50, 200)
        sql = f"SELECT * FROM AtomicParts WHERE Id <= {constant}"
        estimated = mediator.plan(sql).estimated_total_ms
        actual = mediator.query(sql).elapsed_ms
        calibrator.observe("oo7", estimated, actual)
    print(f"  learned adjustment factor for 'oo7': {calibrator.factor('oo7'):.2f}")

    print("\nphase 3 — a brand-new query, before vs after applying the factor:")
    sql = "SELECT * FROM AtomicParts WHERE Id <= 123"
    before = mediator.plan(sql).estimated_total_ms
    calibrator.apply(mediator.coefficients)
    after = mediator.plan(sql).estimated_total_ms
    actual = mediator.query(sql).elapsed_ms
    print(f"  measured:           {actual:9.1f} ms")
    print(
        f"  estimate before:    {before:9.1f} ms "
        f"(error {relative_error(before, actual):5.1%})"
    )
    print(
        f"  estimate after:     {after:9.1f} ms "
        f"(error {relative_error(after, actual):5.1%})"
    )
    print(
        "\n  -> 'we store only the adjusted parameters instead of new "
        "formulas' (§4.3.1)"
    )


if __name__ == "__main__":
    main()
