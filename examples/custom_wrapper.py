"""Writing your own wrapper: the cost communication language in practice.

This example builds a wrapper for a skewed product catalog and walks the
full spectrum of §3:

1. export statistics only — the mediator's generic model misprices a
   selection on the skewed attribute;
2. export a cost rule written in the cost language (Figure 9 syntax),
   using a wrapper-defined *function* backed by an equi-depth histogram
   (the "ad-hoc function defined by the wrapper implementor, that could
   handle, for example, histogram statistics" of §3.3.2);
3. show the mediator choosing the wrapper's formula over the generic one,
   and the resulting estimate tracking the measured time.

Run:  python examples/custom_wrapper.py
"""

from repro import Mediator
from repro.core.selectivity import EquiDepthHistogram
from repro.sources.clock import CostProfile, SimClock
from repro.sources.storage_engine import StorageEngine
from repro.wrappers.base import StorageWrapper

#: 90 % of products sit in category 0; the rest spread over 1..9.
SKEWED_ROWS = [
    {"pid": i, "category": 0 if i % 10 else (i // 10) % 9 + 1, "price": i % 500}
    for i in range(2000)
]


class CatalogWrapper(StorageWrapper):
    """A wrapper whose implementor knows the category skew."""

    def __init__(self, export_rules: bool) -> None:
        engine = StorageEngine(SimClock(CostProfile(io_ms=15.0, cpu_ms_per_object=2.0)))
        engine.create_collection(
            "Products",
            SKEWED_ROWS,
            object_size=64,
            indexed_attributes=["pid"],
            placement="sequential",
        )
        super().__init__("catalog", engine)
        self._export_rules = export_rules
        self.histogram = EquiDepthHistogram.build(
            [float(row["category"]) for row in SKEWED_ROWS], bucket_count=10
        )

    def cost_rules_cdl(self):
        if not self._export_rules:
            return None
        pages = self.engine.page_count("Products")
        # A selection on category always scans the file; the *cardinality*
        # is what the histogram fixes.  category_sel is a Python function
        # shipped alongside the rules (cost_functions below).
        return f"""
        var IO = 15.0;
        var PerObject = 2.0;
        var Eval = 0.5;
        costrule select(Products, category = V) {{
            CountObject = Products.CountObject * category_sel(V);
            TotalSize = CountObject * Products.ObjectSize;
            TotalTime = IO * {pages}
                        + Products.CountObject * (PerObject + Eval);
        }}
        """

    def cost_functions(self):
        return {"category_sel": lambda v: self.histogram.selectivity_eq(float(v))}


def run(export_rules: bool) -> None:
    label = "WITH wrapper rules" if export_rules else "statistics only"
    mediator = Mediator()
    mediator.register(CatalogWrapper(export_rules))
    print(f"\n--- {label} ---")
    for category in (0, 5):
        sql = f"SELECT * FROM Products WHERE category = {category}"
        optimized = mediator.plan(sql)
        estimate = optimized.estimate.estimate_for(
            next(n for n in optimized.plan.walk() if n.operator_name == "select")
        )
        result = mediator.query(sql)
        print(
            f"category={category}: estimated rows "
            f"{estimate.count_object:8.1f}, actual rows {result.count:5d}; "
            f"estimated {result.estimated_ms:9.1f} ms, "
            f"measured {result.elapsed_ms:9.1f} ms"
        )


def main() -> None:
    # The uniform assumption says every category keeps 1/10 of the rows;
    # reality is 90 % / ~1 %.  The histogram-backed rule fixes it.
    run(export_rules=False)
    run(export_rules=True)


if __name__ == "__main__":
    main()
