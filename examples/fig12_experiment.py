"""Regenerate the paper's Figure 12 (§5) and draw it as an ASCII chart.

The experiment: an index scan over the OO7 AtomicParts extent (70 000
objects × 56 bytes, 1000 pages, 96 % fill), response time vs selectivity,
three series — measured (simulated ObjectStore), the calibrated linear
estimate, and the wrapper-exported Yao-formula rule.

Run:  python examples/fig12_experiment.py [--small]
"""

import sys

from repro.bench.fig12 import run_fig12
from repro.oo7 import PAPER, SMALL


def ascii_chart(result, width: int = 64, height: int = 18) -> str:
    """A rough terminal rendering of the three Figure 12 curves."""
    points = result.points
    max_y = max(p.calibration_ms for p in points) * 1.05
    max_x = max(p.selectivity for p in points)
    grid = [[" "] * (width + 1) for _ in range(height + 1)]

    def plot(selectivity: float, value_ms: float, char: str) -> None:
        x = round(selectivity / max_x * width)
        y = height - round(value_ms / max_y * height)
        if grid[y][x] == " ":
            grid[y][x] = char

    for point in points:
        plot(point.selectivity, point.calibration_ms, "c")
        plot(point.selectivity, point.yao_rule_ms, "y")
        plot(point.selectivity, point.measured_ms, "*")
    lines = ["".join(row) for row in grid]
    axis = "-" * (width + 1)
    legend = "  * experiment   y yao-rule estimate   c calibration estimate"
    return "\n".join(
        [f"T (max {max_y / 1000:.0f}s)"] + lines + [axis, "0" + " " * (width - 8) + f"sel={max_x}", legend]
    )


def main() -> None:
    config = SMALL if "--small" in sys.argv else PAPER
    print(f"running Figure 12 on the {config.name!r} configuration "
          f"({config.num_atomic_parts} AtomicParts)...")
    result = run_fig12(config=config)
    print()
    print(result.table())
    print()
    print(result.error_table())
    print()
    print(ascii_chart(result))


if __name__ == "__main__":
    main()
