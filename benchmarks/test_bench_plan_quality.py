"""Benchmark target for E2 — plan quality per cost-model configuration.

Runs the federation workload under the generic / calibrated / blended
configurations and asserts the expected ordering of *actual* execution
times: richer cost information never chooses worse plans overall, and
wins outright on the join-placement and join-order queries where the
generic model's standard values mislead it.

The timed benchmark measures one full optimize() call on the three-way
join — the optimizer work a mediator performs per client query.
"""

import pytest

from repro.bench.federation import build_engines, build_mediator
from repro.bench.plan_quality import run_plan_quality

from conftest import print_report


@pytest.fixture(scope="module")
def report():
    return run_plan_quality()


class TestPlanQuality:
    def test_blended_never_worse_overall(self, report):
        total_generic = report.experiment.total_actual("generic")
        total_blended = report.experiment.total_actual("blended")
        assert total_blended <= total_generic * 1.001

    def test_blended_wins_join_placement(self, report):
        """The local-join query: with real cost information the mediator
        picks the cheaper join placement."""
        generic = report.experiment.record_for("generic", "local-join")
        blended = report.experiment.record_for("blended", "local-join")
        assert blended.actual_ms < 0.95 * generic.actual_ms

    def test_blended_wins_join_order(self, report):
        """The audit-chain query: statistics steer the join order away
        from the 150 000-row intermediate."""
        generic = report.experiment.record_for("generic", "audit-chain")
        blended = report.experiment.record_for("blended", "audit-chain")
        assert blended.actual_ms < 0.95 * generic.actual_ms

    def test_all_configurations_return_same_answers(self, report):
        for label in {r.label for r in report.experiment.records}:
            counts = {
                model: report.experiment.record_for(model, label).rows
                for model in ("generic", "calibrated", "blended")
            }
            assert len(set(counts.values())) == 1, (label, counts)


def test_print_plan_quality_table(report):
    print_report("E2 — plan quality", report.table())


@pytest.mark.benchmark(group="plan-quality")
def test_benchmark_optimize_three_way_join(benchmark):
    engines = build_engines()
    mediator = build_mediator("blended", engines)
    sql = (
        "SELECT * FROM Orders, Suppliers, Tickets "
        "WHERE Orders.supplier = Suppliers.sid "
        "AND Tickets.supplier = Suppliers.sid AND Orders.qty < 50"
    )
    spec = mediator.parse(sql)
    result = benchmark(lambda: mediator.optimizer.optimize(spec))
    assert result.estimated_total_ms > 0
