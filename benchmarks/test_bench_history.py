"""Benchmark target for E5 — §4.3.1 historical costs.

Asserts:

* after one execution, the estimate of an identical subquery is exact
  (query-scope rules carry "real costs, not estimates");
* pure query-scope recording barely helps subqueries whose constants
  differ (the limitation the paper points out);
* parameter adjustment generalizes: adjusted coefficients cut the error
  on unseen constants well below the base model's.

The timed benchmark measures a blended estimate against a repository
holding recorded history (query-scope lookup cost).
"""

import pytest

from repro.bench.history_bench import (
    build_mediator,
    run_convergence,
    run_generalization,
    run_history,
)

from conftest import print_report


@pytest.fixture(scope="module")
def generalization():
    return run_generalization()


class TestHistory:
    def test_identical_subquery_converges(self):
        rows = run_convergence(repetitions=3)
        first_error = rows[0][1]
        later_errors = [error for _execution, error in rows[1:]]
        assert first_error > 0.05
        assert all(error < 1e-6 for error in later_errors)

    def test_query_scope_barely_generalizes(self, generalization):
        base, recorded, _adjusted = generalization
        # Most of the base error remains on unseen constants.
        assert recorded > 0.5 * base

    def test_adjustment_generalizes(self, generalization):
        base, _recorded, adjusted = generalization
        assert adjusted < 0.6 * base


def test_print_history_tables():
    result = run_history()
    print_report("E5a — convergence", result.convergence_table())
    print_report("E5b — generalization", result.generalization_table())


@pytest.mark.benchmark(group="history")
def test_benchmark_estimate_with_recorded_history(benchmark):
    mediator = build_mediator(record_history=True)
    sql = "SELECT * FROM AtomicParts WHERE Id <= 77"
    mediator.query(sql)  # record once
    spec = mediator.parse(sql)
    result = benchmark(lambda: mediator.optimizer.optimize(spec))
    assert result.estimated_total_ms > 0
