"""Benchmark target for E4 — rule-machinery overhead and ablations.

Asserts the §3.3.2 engineering claim: with the "virtual table" dispatch
index, per-estimate cost stays flat as query-specific rules proliferate,
while a linear scan degrades; plus the §4.2/§4.3.2 ablation directions
(propagation computes fewer variables; pruning rejects candidates early).

The timed benchmarks measure a single estimate at two rule-set sizes with
the dispatch index on, and one with it off, so pytest-benchmark's
comparison table shows the scaling directly.
"""

import pytest

from repro.algebra.builders import scan
from repro.bench.overhead import (
    build_estimator,
    run_cache_ablation,
    run_conflict_ablation,
    run_dispatch_scaling,
    run_overhead,
    run_propagation_ablation,
    run_pruning_ablation,
)

from conftest import print_report


@pytest.fixture(scope="module")
def dispatch_rows():
    return run_dispatch_scaling(rule_counts=(10, 200, 1000), repetitions=50)


class TestDispatchIndex:
    def test_indexed_lookup_stays_flat(self, dispatch_rows):
        small = dispatch_rows[0][1]
        large = dispatch_rows[-1][1]
        assert large < 3 * small  # flat-ish as rules grow 100x

    def test_linear_scan_degrades(self, dispatch_rows):
        small = dispatch_rows[0][2]
        large = dispatch_rows[-1][2]
        assert large > 10 * small

    def test_index_beats_linear_at_scale(self, dispatch_rows):
        _count, indexed, linear = dispatch_rows[-1]
        assert indexed * 5 < linear


class TestAblations:
    def test_pruning_rejects_candidates(self):
        rows = {label: (candidates, pruned, formulas)
                for label, candidates, pruned, formulas in run_pruning_ablation()}
        assert rows["on"][1] > 0  # something was pruned
        assert rows["off"][1] == 0
        assert rows["on"][2] <= rows["off"][2]  # fewer formula evaluations

    def test_propagation_computes_fewer_variables(self):
        rows = {label: counts for label, *counts in run_propagation_ablation()}
        assert rows["on"][0] < rows["off"][0]

    def test_conflict_policies_differ(self):
        rows = dict(run_conflict_ablation())
        assert rows["first"] <= rows["lowest"]

    def test_subplan_cache_cuts_optimizer_work(self):
        rows = dict(run_cache_ablation())
        assert rows["on"] * 2 < rows["off"]


def test_print_overhead_tables():
    result = run_overhead(rule_counts=(10, 50, 200, 1000), repetitions=50)
    print_report("E4a — dispatch", result.dispatch_table())
    print_report("E4b — pruning", result.pruning_table())
    print_report("E4c — propagation", result.propagation_table())
    print_report("E4d — conflict policy", result.conflict_table())
    print_report("E4e — subplan cache", result.cache_table())


@pytest.mark.benchmark(group="overhead")
@pytest.mark.parametrize("rule_count", [10, 1000])
def test_benchmark_estimate_with_dispatch_index(benchmark, rule_count):
    estimator = build_estimator(rule_count, use_dispatch_index=True)
    plan = scan("Parts").where_eq("Id", rule_count - 1).build()
    benchmark(lambda: estimator.estimate(plan, default_source="src"))


@pytest.mark.benchmark(group="overhead")
def test_benchmark_estimate_linear_scan_1000_rules(benchmark):
    estimator = build_estimator(1000, use_dispatch_index=False)
    plan = scan("Parts").where_eq("Id", 999).build()
    benchmark(lambda: estimator.estimate(plan, default_source="src"))
