"""Benchmark target for Figure 12 (§5) — the paper's validation figure.

Regenerates the three series (Experiment / Calibration / Yao formula) on
the paper's exact configuration (70 000 AtomicParts × 56 bytes, 1000
pages, IO = 25 ms, Output = 9 ms) and asserts the figure's qualitative
content:

* the measured curve is concave in selectivity;
* the wrapper-exported Yao rule tracks the measurement closely
  (mean relative error below 5 %);
* the calibrated linear model overshoots at high selectivity by a large
  factor and is at least an order of magnitude worse than the Yao rule
  on mean relative error.

The timed benchmark measures the cost-estimation step itself — one
blended-model estimate of the index-scan plan — since that is the
operation the mediator performs per candidate plan.
"""

import pytest

from repro.algebra.expressions import Comparison, attr, lit
from repro.algebra.logical import Scan, Select
from repro.bench.fig12 import build_estimator, build_wrapper, run_fig12
from repro.oo7 import PAPER

from conftest import print_report


@pytest.fixture(scope="module")
def fig12_result():
    return run_fig12(config=PAPER)


class TestFigure12Shape:
    def test_experiment_curve_is_concave(self, fig12_result):
        points = fig12_result.points
        increments = [
            (b.measured_ms - a.measured_ms) / (b.selectivity - a.selectivity)
            for a, b in zip(points, points[1:])
        ]
        # Slopes must be non-increasing (within numerical tolerance).
        for earlier, later in zip(increments, increments[1:]):
            assert later <= earlier * 1.01

    def test_yao_rule_tracks_experiment(self, fig12_result):
        assert fig12_result.yao_error.mean_relative_error < 0.05

    def test_calibration_overshoots_at_high_selectivity(self, fig12_result):
        last = fig12_result.points[-1]
        assert last.selectivity == pytest.approx(0.7)
        assert last.calibration_ms > 1.25 * last.measured_ms

    def test_yao_beats_calibration_by_an_order_of_magnitude(self, fig12_result):
        assert (
            fig12_result.yao_error.mean_relative_error * 10
            < fig12_result.calibration_error.mean_relative_error
        )

    def test_paper_scale_absolute_times(self, fig12_result):
        """The paper's measured curve reaches roughly 450-500 s at
        selectivity 0.7; the simulated store (same constants) must too."""
        last = fig12_result.points[-1]
        assert 400_000 < last.measured_ms < 550_000

    def test_pages_saturate_like_yao(self, fig12_result):
        # At 70 objects/page, 10 % selectivity already touches ~all pages.
        for point in fig12_result.points:
            if point.selectivity >= 0.1:
                assert point.pages_fetched >= 0.97 * fig12_result.page_count


def test_print_figure12_tables(fig12_result):
    print_report("Figure 12 (§5)", fig12_result.table())
    print_report("Figure 12 — errors", fig12_result.error_table())


@pytest.mark.benchmark(group="fig12")
def test_benchmark_blended_estimate(benchmark):
    """Time one blended-model cost estimate of the §5 index-scan plan."""
    wrapper = build_wrapper(PAPER)
    estimator = build_estimator(wrapper)
    plan = Select(Scan("AtomicParts"), Comparison("<=", attr("Id"), lit(35000)))
    result = benchmark(lambda: estimator.estimate(plan, default_source="oo7"))
    assert result.total_time > 0
