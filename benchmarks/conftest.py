"""Benchmark-suite configuration.

Experiment tables print at the end of each benchmark module so that
``pytest benchmarks/ --benchmark-only -s`` shows the regenerated
figures/tables alongside the timing statistics.  Without ``-s`` the
tables land in the captured output of the printing test.
"""

import pytest


def print_report(title: str, text: str) -> None:
    """Print one experiment report with a visible banner."""
    banner = f"\n{'#' * 72}\n# {title}\n{'#' * 72}"
    print(banner)
    print(text)
