"""Benchmark target for E8 — concurrent dispatch and the subanswer cache.

Asserts the extension's headline claims on the three-branch federation:
concurrent waves lower simulated ``TotalTime`` without changing a single
answer row; a single concurrency slot degrades gracefully back to the
paper's sequential clock; a repeated query is served from the subanswer
cache with the hit/miss counters visible to clients.
"""

import pytest

from repro.bench.parallel import run_parallel_experiment

from conftest import print_report


@pytest.fixture(scope="module")
def experiment():
    return run_parallel_experiment()


class TestConcurrentDispatch:
    def test_every_query_gets_faster(self, experiment):
        for label, sequential_ms, concurrent_ms, saved_ms, _match in (
            experiment.dispatch_rows
        ):
            assert concurrent_ms < sequential_ms, label
            assert saved_ms > 0, label

    def test_answers_are_row_identical(self, experiment):
        assert all(match for *_rest, match in experiment.dispatch_rows)

    def test_single_slot_matches_sequential(self, experiment):
        for label, sequential_ms, capped_ms in experiment.cap_rows:
            assert capped_ms == pytest.approx(sequential_ms), label


class TestSubanswerCache:
    def test_second_run_is_served_from_cache(self, experiment):
        assert experiment.second_run.cache_hits == 3
        assert experiment.second_run.cache_misses == 0
        assert experiment.first_run.cache_misses == 3

    def test_cache_cuts_elapsed_time(self, experiment):
        # Only mediator-side composition CPU remains on a full hit.
        assert experiment.second_run.elapsed_ms * 10 < experiment.first_run.elapsed_ms

    def test_cached_answer_identical(self, experiment):
        assert experiment.second_run.rows == experiment.first_run.rows

    def test_counters_visible_in_explain(self, experiment):
        assert (
            "subanswer cache (lifetime): 3 hits / 3 misses"
            in experiment.explain_text
        )


def test_print_parallel_tables(experiment):
    print_report("E8a — dispatch", experiment.dispatch_table())
    print_report("E8b — concurrency cap", experiment.cap_table())
    print_report("E8c — subanswer cache", experiment.cache_table())
