"""Benchmark target for E6 — clustering (§7).

Asserts:

* the physical effect: at mid selectivity the clustered extent fetches
  an order of magnitude fewer pages than the scattered one;
* the wrapper-exported rules track *both* stores (the wrapper knows its
  clustering and exports the matching formula);
* a single calibrated linear model cannot serve both — its error on the
  clustered store is at least an order of magnitude worse than the
  clustering-aware rule's ("clustering ... can not be easily captured by
  a calibrating model", §7).
"""

import pytest

from repro.bench.clustering import build_store, run_clustering

from conftest import print_report


@pytest.fixture(scope="module")
def result():
    return run_clustering()


class TestClustering:
    def test_clustered_fetches_far_fewer_pages(self, result):
        mid = next(p for p in result.points if p.selectivity == 0.1)
        assert mid.clustered_pages * 5 <= mid.scattered_pages

    def test_rules_track_both_stores(self, result):
        assert result.scattered_rule_error.mean_relative_error < 0.05
        assert result.clustered_rule_error.mean_relative_error < 0.05

    def test_single_calibrated_model_fails_on_clustered(self, result):
        calibrated = result.calibration_error_on_clustered.mean_relative_error
        rule = result.clustered_rule_error.mean_relative_error
        assert calibrated > 10 * rule

    def test_same_answers_from_both_stores(self, result):
        # run_clustering asserts equal row counts internally; re-check the
        # physical counters are consistent with full correctness.
        for point in result.points:
            assert point.scattered_pages >= point.clustered_pages


def test_print_clustering_table(result):
    print_report("E6 — clustering", result.table())


@pytest.mark.benchmark(group="clustering")
def test_benchmark_clustered_index_scan(benchmark):
    wrapper = build_store("clustered:Id", count=7000)

    def scan_once():
        return wrapper.database.timed_index_scan("Parts", "Id", high=699)

    rows, _ms, _pages = benchmark(scan_once)
    assert len(rows) == 700
