"""Benchmark target for E7 — dependent (bind) joins (§7 motivation).

Asserts the experiment's shape:

* the bind join beats the classic ship-everything join by two orders of
  magnitude when few outer keys survive the filter;
* the advantage shrinks as the key count grows (per-key probing versus a
  one-off bulk scan), though within the probe-friendly range it persists;
* with calibrated cost information the optimizer picks the faster plan at
  *every* key count — "avoid processing a large number of images by
  first selecting a few images from other data source".

The timed benchmark measures one optimize() call on the media federation.
"""

import pytest

from repro.bench.bindjoin_bench import build_mediator, run_bindjoin_experiment

from conftest import print_report


@pytest.fixture(scope="module")
def result():
    return run_bindjoin_experiment()


class TestBindJoinShape:
    def test_huge_speedup_at_low_key_counts(self, result):
        smallest = result.points[0]
        assert smallest.outer_keys == 10
        assert smallest.classic_measured_ms > 50 * smallest.bind_measured_ms

    def test_advantage_shrinks_with_key_count(self, result):
        ratios = [
            p.classic_measured_ms / p.bind_measured_ms for p in result.points
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_optimizer_always_picks_the_faster_plan(self, result):
        assert result.all_choices_correct

    def test_estimates_track_measurements(self, result):
        for point in result.points:
            assert point.bind_estimated_ms == pytest.approx(
                point.bind_measured_ms, rel=0.35
            )
            assert point.classic_estimated_ms == pytest.approx(
                point.classic_measured_ms, rel=0.35
            )


def test_print_bindjoin_table(result):
    print_report("E7 — bind join", result.table())


@pytest.mark.benchmark(group="bindjoin")
def test_benchmark_optimize_with_bindjoin_candidates(benchmark):
    mediator = build_mediator()
    sql = (
        "SELECT * FROM Tags, Images "
        "WHERE Tags.tagged = Images.img AND Tags.weight < 50"
    )
    spec = mediator.parse(sql)
    result = benchmark(lambda: mediator.optimizer.optimize(spec))
    assert result.estimated_total_ms > 0
