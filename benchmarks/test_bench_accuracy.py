"""Benchmark target for E3 — estimation accuracy per configuration.

The paper's central quantitative claim, generalized beyond Figure 12:
wrapper-exported cost information makes the mediator's estimates track
reality.  Asserts the accuracy ordering
``blended <= calibrated < generic`` on mean relative error over the
federation workload.

The timed benchmark measures one end-to-end query (optimize + execute)
under the blended configuration.
"""

import pytest

from repro.bench.accuracy import run_accuracy
from repro.bench.federation import build_engines, build_mediator

from conftest import print_report


@pytest.fixture(scope="module")
def report():
    return run_accuracy()


class TestAccuracy:
    def test_calibration_improves_on_generic(self, report):
        assert (
            report.summary("calibrated").mean_relative_error
            < 0.5 * report.summary("generic").mean_relative_error
        )

    def test_blended_is_best(self, report):
        blended = report.summary("blended").mean_relative_error
        assert blended <= report.summary("calibrated").mean_relative_error * 1.001
        assert blended < report.summary("generic").mean_relative_error

    def test_blended_median_error_small(self, report):
        assert report.summary("blended").median_relative_error < 0.25

    def test_generic_error_is_large(self, report):
        """Without statistics the standard values miss by multiples —
        the problem statement of §1."""
        assert report.summary("generic").mean_relative_error > 1.0


def test_print_accuracy_tables(report):
    print_report("E3 — accuracy summary", report.table())
    print_report("E3 — per-query detail", report.detail_table())


@pytest.mark.benchmark(group="accuracy")
def test_benchmark_end_to_end_query(benchmark):
    engines = build_engines()
    mediator = build_mediator("blended", engines)
    sql = "SELECT * FROM AtomicParts WHERE Id = 4321"
    result = benchmark(lambda: mediator.query(sql))
    assert result.count == 1
